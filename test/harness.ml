(* Shared test apparatus: a bench for exercising one kernel behaviour in
   isolation, and helpers for whole-application assertions. *)

open Block_parallel

(* ---- single-kernel bench ---------------------------------------------- *)

type bench = {
  io : Behaviour.io;
  behaviour : Behaviour.t;
  feed : string -> Item.t -> unit;  (* append to an input queue *)
  out : string -> Item.t list;  (* drain an output queue *)
  out_peek : string -> Item.t list;  (* inspect without draining *)
  step : unit -> Behaviour.fired option;
  run_to_idle : unit -> int;  (* steps until no progress; returns count *)
}

let bench ?(capacity = 1024) (spec : Kernel.t) =
  let in_queues = Hashtbl.create 8 and out_queues = Hashtbl.create 8 in
  List.iter
    (fun (p : Port.t) -> Hashtbl.replace in_queues p.Port.name (Queue.create ()))
    spec.Kernel.inputs;
  List.iter
    (fun (p : Port.t) -> Hashtbl.replace out_queues p.Port.name (Queue.create ()))
    spec.Kernel.outputs;
  let in_q name =
    match Hashtbl.find_opt in_queues name with
    | Some q -> q
    | None -> Alcotest.failf "bench: no input %s" name
  in
  let out_q name =
    match Hashtbl.find_opt out_queues name with
    | Some q -> q
    | None -> Alcotest.failf "bench: no output %s" name
  in
  let io =
    {
      Behaviour.peek =
        (fun name ->
          let q = in_q name in
          if Queue.is_empty q then None else Some (Queue.peek q));
      pop = (fun name -> Queue.pop (in_q name));
      push = (fun name item -> Queue.push item (out_q name));
      space = (fun name -> capacity - Queue.length (out_q name));
      (* Allocation-naive io: the bench harness exercises behaviours
         outside any engine, so releases are dropped. *)
      acquire = Image.create;
      release = ignore;
      has_input = (fun name -> not (Queue.is_empty (in_q name)));
    }
  in
  let behaviour = spec.Kernel.make_behaviour () in
  let drain q = List.of_seq (Queue.to_seq q) in
  {
    io;
    behaviour;
    feed = (fun name item -> Queue.push item (in_q name));
    out =
      (fun name ->
        let q = out_q name in
        let items = drain q in
        Queue.clear q;
        items);
    out_peek = (fun name -> drain (out_q name));
    step = (fun () -> behaviour.Behaviour.try_step io);
    run_to_idle =
      (fun () ->
        let rec go n =
          match behaviour.Behaviour.try_step io with
          | Some _ -> go (n + 1)
          | None -> n
        in
        go 0);
  }

let px v = Item.data (Image.Gen.constant Size.one v)

let feed_frame ?(tokens = true) bench input (img : Image.t) ~frame_idx =
  let w = Image.width img and h = Image.height img in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      bench.feed input (px (Image.get img ~x ~y))
    done;
    if tokens then bench.feed input (Item.ctl (Token.eol y))
  done;
  if tokens then bench.feed input (Item.ctl (Token.eof frame_idx))

let data_chunks items =
  List.filter_map
    (function Item.Data img -> Some img | Item.Ctl _ -> None)
    items

let tokens_of items =
  List.filter_map
    (function Item.Ctl t -> Some t | Item.Data _ -> None)
    items

(* ---- whole-application helpers ---------------------------------------- *)

let check_app ?(greedy_list = [ false; true ]) ?machine
    (inst : App.instance) =
  let machine = Option.value machine ~default:Machine.default in
  let compiled = Pipeline.compile ~machine inst.App.graph in
  List.iter
    (fun greedy ->
      let result = Pipeline.simulate compiled ~greedy in
      let diffs, ok = App.verify inst result in
      List.iter
        (fun (label, d) ->
          if d > 1e-9 then
            Alcotest.failf "%s [%s] %s: |diff| = %g" inst.App.name
              (if greedy then "greedy" else "1:1")
              label d)
        diffs;
      if not ok then
        Alcotest.failf "%s [%s]: verification failed (chunks or leftovers)"
          inst.App.name
          (if greedy then "greedy" else "1:1");
      let verdict =
        Sim.real_time_verdict result ~expected_frames:inst.App.n_frames
          ~period_s:(App.period_s inst)
          ~allowed_leftover:inst.App.allowed_leftover ()
      in
      if not verdict.Sim.met then
        Alcotest.failf "%s [%s]: real-time constraint missed" inst.App.name
          (if greedy then "greedy" else "1:1"))
    greedy_list;
  compiled

(* ---- alcotest testables ----------------------------------------------- *)

let size : Size.t Alcotest.testable =
  Alcotest.testable (fun ppf s -> Size.pp ppf s) Size.equal

let inset : Inset.t Alcotest.testable =
  Alcotest.testable (fun ppf i -> Inset.pp ppf i) Inset.equal

let image : Image.t Alcotest.testable =
  Alcotest.testable (fun ppf i -> Image.pp ppf i) (fun a b -> Image.equal a b)

let err_kind : Err.t Alcotest.testable =
  Alcotest.testable
    (fun ppf e -> Err.pp ppf e)
    (fun a b ->
      match (a, b) with
      | Err.Invalid_parameterization _, Err.Invalid_parameterization _
      | Err.Graph_malformed _, Err.Graph_malformed _
      | Err.Rate_mismatch _, Err.Rate_mismatch _
      | Err.Alignment_error _, Err.Alignment_error _
      | Err.Resource_exhausted _, Err.Resource_exhausted _
      | Err.Not_schedulable _, Err.Not_schedulable _
      | Err.Unsupported _, Err.Unsupported _ ->
        true
      | _ -> false)

let expect_error kind f =
  match Err.guard f with
  | Ok _ -> Alcotest.failf "expected %s error" (Err.to_string kind)
  | Error e -> Alcotest.check err_kind "error class" kind e

(* Substring search, for asserting on rendered output. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
