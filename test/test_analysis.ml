(* Tests for the dataflow analysis (Section III): iteration sizes and
   rates, inset propagation, misalignment detection, buffering needs,
   constant streams, and the feedback work-list. *)

open Block_parallel
open Harness

let source_into g ~frame ~rate =
  Graph.add g
    ~meta:(Graph.Source_meta { frame; rate })
    (Source.spec ~frame ~frames:[] ())

(* The paper's worked example: a 5x5 convolution over a 100x100 input at
   50 Hz iterates 96x96 at 50 Hz, and its output extent is 96x96. *)
let test_paper_conv_example () =
  let g = Graph.create () in
  let src = source_into g ~frame:(Size.v 100 100) ~rate:(Rate.hz 50.) in
  let conv = Graph.add g (Conv.spec ~w:5 ~h:5 ()) in
  let coeff =
    Graph.add g
      (Source.const ~chunk:(Image.Gen.constant (Size.v 5 5) 1.) ())
  in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(conv, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(conv, "coeff");
  Graph.connect g ~from:(conv, "out") ~into:(sink, "in");
  let an = Dataflow.analyze g in
  let info = Dataflow.info_of an conv in
  Alcotest.(check (option size)) "96x96 iterations" (Some (Size.v 96 96))
    info.Dataflow.iterations;
  (match info.Dataflow.rate with
  | Some r -> Alcotest.(check (float 1e-9)) "50Hz" 50. (Rate.to_hz r)
  | None -> Alcotest.fail "expected a rate");
  let out_stream =
    Dataflow.stream_of an
      (List.hd (Graph.out_channels g conv ~port:"out" ())).Graph.chan_id
  in
  Alcotest.check size "output extent" (Size.v 96 96) out_stream.Stream.extent;
  Alcotest.check inset "output inset" (Inset.uniform 2.)
    out_stream.Stream.inset;
  Alcotest.(check (float 0.1)) "fires/frame" (96. *. 96.)
    out_stream.Stream.chunks_per_frame

let test_needs_buffer () =
  let g = Graph.create () in
  let src = source_into g ~frame:(Size.v 10 10) ~rate:(Rate.hz 10.) in
  let med = Graph.add g (Median.spec ~w:3 ~h:3 ()) in
  let fwd = Graph.add g (Arith.forward ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(med, "in");
  Graph.connect g ~from:(med, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(sink, "in");
  let an = Dataflow.analyze g in
  let needs id port =
    Dataflow.needs_buffer an (Option.get (Graph.in_channel g id port))
  in
  Alcotest.(check bool) "pixels into 3x3 window" true (needs med "in");
  Alcotest.(check bool) "pixels into pixels" false (needs fwd "in");
  Alcotest.(check bool) "pixels into sink" false (needs sink "in")

let test_needs_buffer_downsample () =
  let g = Graph.create () in
  let src = source_into g ~frame:(Size.v 10 10) ~rate:(Rate.hz 10.) in
  let dec_window = Window.v ~step:(Step.v 2 2) Size.one in
  let methods =
    [ Method_spec.on_data ~name:"m" ~inputs:[ "in" ] ~outputs:[ "out" ] () ]
  in
  let dec =
    Graph.add g
      (Kernel.v ~class_name:"Dec"
         ~inputs:[ Port.input "in" dec_window ]
         ~outputs:[ Port.output "out" Window.pixel ]
         ~methods
         ~make_behaviour:(fun () ->
           Behaviour.iteration_kernel ~methods
             ~run:(fun _ ~alloc:_ inputs -> [ ("out", List.assoc "in" inputs) ])
             ())
         ())
  in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(dec, "in");
  Graph.connect g ~from:(dec, "out") ~into:(sink, "in");
  let an = Dataflow.analyze g in
  Alcotest.(check bool) "decimating window needs a buffer" true
    (Dataflow.needs_buffer an (Option.get (Graph.in_channel g dec "in")));
  let info = Dataflow.info_of an dec in
  Alcotest.(check (option size)) "5x5 decimated grid" (Some (Size.v 5 5))
    info.Dataflow.iterations

let test_constant_streams () =
  let g = Graph.create () in
  let src = source_into g ~frame:(Size.v 8 8) ~rate:(Rate.hz 10.) in
  let conv = Graph.add g (Conv.spec ~w:3 ~h:3 ()) in
  let coeff =
    Graph.add g (Source.const ~chunk:(Image.Gen.constant (Size.v 3 3) 1.) ())
  in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(conv, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(conv, "coeff");
  Graph.connect g ~from:(conv, "out") ~into:(sink, "in");
  let an = Dataflow.analyze g in
  let coeff_stream =
    Dataflow.stream_of an
      (List.hd (Graph.out_channels g coeff ())).Graph.chan_id
  in
  Alcotest.(check bool) "constant" true coeff_stream.Stream.constant;
  Alcotest.(check bool) "no buffer for constants" false
    (Dataflow.needs_buffer an (Option.get (Graph.in_channel g conv "coeff")));
  let info = Dataflow.info_of an coeff in
  Alcotest.(check bool) "no steady-state rate" true (info.Dataflow.rate = None)

let test_misalignment_detected () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 20.)
      ~n_frames:1 ()
  in
  let an = Dataflow.analyze inst.App.graph in
  match Dataflow.misalignments an with
  | [ m ] ->
    Alcotest.(check string) "at the subtract" "run" m.Dataflow.mis_method;
    Alcotest.check size "intersection" (Size.v 20 14)
      m.Dataflow.target_iterations;
    Alcotest.check inset "union inset" (Inset.uniform 2.)
      m.Dataflow.target_inset
  | l -> Alcotest.failf "expected one misalignment, got %d" (List.length l)

let test_rate_mismatch_rejected () =
  let g = Graph.create () in
  let a = source_into g ~frame:(Size.v 4 4) ~rate:(Rate.hz 10.) in
  let b = source_into g ~frame:(Size.v 4 4) ~rate:(Rate.hz 20.) in
  let sub = Graph.add g (Arith.subtract ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(a, "out") ~into:(sub, "in0");
  Graph.connect g ~from:(b, "out") ~into:(sub, "in1");
  Graph.connect g ~from:(sub, "out") ~into:(sink, "in");
  expect_error (Err.Rate_mismatch "") (fun () ->
      ignore (Dataflow.analyze g))

let test_token_method_stream () =
  (* The histogram's finishCount output is one chunk per frame. *)
  let inst =
    Apps.Histogram_app.v ~frame:(Size.v 8 6) ~rate:(Rate.hz 10.) ~n_frames:1 ()
  in
  let g = inst.App.graph in
  let an = Dataflow.analyze g in
  let hist = Graph.node_by_name g "Histogram" in
  let out =
    Dataflow.stream_of an
      (List.hd (Graph.out_channels g hist.Graph.id ~port:"out" ())).Graph.chan_id
  in
  Alcotest.(check (float 0.)) "once per frame" 1. out.Stream.chunks_per_frame;
  Alcotest.check size "bins chunk" (Size.v 32 1) out.Stream.chunk;
  (* Counting dominates the fires: one per pixel plus the EOF handler. *)
  let info = Dataflow.info_of an hist.Graph.id in
  Alcotest.(check (float 0.1)) "fires" 49. info.Dataflow.fires_per_frame

let test_elaborated_graph_consistency () =
  (* After full compilation, the analysis must find no residual work. *)
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:1 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let an = compiled.Pipeline.analysis in
  Alcotest.(check int) "no misalignments" 0
    (List.length (Dataflow.misalignments an));
  List.iter
    (fun ch ->
      Alcotest.(check bool) "no buffer needed" false
        (Dataflow.needs_buffer an ch))
    (Graph.channels compiled.Pipeline.graph)

let test_feedback_worklist () =
  let inst =
    Apps.Feedback_app.v ~frame:(Size.v 6 5) ~rate:(Rate.hz 10.) ~n_frames:1 ()
  in
  let an = Dataflow.analyze inst.App.graph in
  let combine = Graph.node_by_name inst.App.graph "IIR" in
  let info = Dataflow.info_of an combine.Graph.id in
  Alcotest.(check (float 0.)) "loop fires once per pixel" 30.
    info.Dataflow.fires_per_frame

let test_feedback_without_init_rejected () =
  let g = Graph.create ~allow_cycles:true () in
  let src = source_into g ~frame:(Size.v 4 4) ~rate:(Rate.hz 10.) in
  let combine = Graph.add g (Feedback.loop_combine ( +. )) in
  let fwd = Graph.add g (Arith.forward ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(combine, "in0");
  Graph.connect g ~from:(combine, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(combine, "in1");
  Graph.connect g ~from:(combine, "out") ~into:(sink, "in");
  expect_error (Err.Graph_malformed "") (fun () ->
      ignore (Dataflow.analyze g))

let test_pad_meta_analysis () =
  (* A pad node grows the extent and reduces the inset. *)
  let g = Graph.create () in
  let src = source_into g ~frame:(Size.v 6 5) ~rate:(Rate.hz 10.) in
  let pad =
    Graph.add g
      ~meta:(Graph.Pad_meta { left = 1; right = 1; top = 2; bottom = 0 })
      (Inset_pad.pad ~frame:(Size.v 6 5) ~left:1 ~right:1 ~top:2 ~bottom:0 ())
  in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(pad, "in");
  Graph.connect g ~from:(pad, "out") ~into:(sink, "in");
  let an = Dataflow.analyze g in
  let s =
    Dataflow.stream_of an
      (List.hd (Graph.out_channels g pad ~port:"out" ())).Graph.chan_id
  in
  Alcotest.check size "grown extent" (Size.v 8 7) s.Stream.extent;
  Alcotest.(check (float 0.)) "negative inset (padding)" (-1.)
    s.Stream.inset.Inset.left

let test_stream_helpers () =
  let s = Stream.source_stream ~frame:(Size.v 4 3) ~rate:(Rate.hz 5.) ~origin:0 in
  Alcotest.(check (float 0.)) "words/frame" 12. (Stream.words_per_frame s);
  let c = Stream.constant_stream ~chunk:(Size.v 2 2) in
  Alcotest.(check (float 0.)) "constant words" 0. (Stream.words_per_frame c);
  (match Stream.same_rate [ s; c ] with
  | Some r -> Alcotest.(check (float 0.)) "rate survives constants" 5. (Rate.to_hz r)
  | None -> Alcotest.fail "expected rate");
  expect_error (Err.Rate_mismatch "") (fun () ->
      ignore
        (Stream.same_rate
           [ s; Stream.source_stream ~frame:(Size.v 4 3) ~rate:(Rate.hz 7.) ~origin:1 ]))

let suite =
  [
    Alcotest.test_case "dataflow: paper 5x5@50Hz example" `Quick
      test_paper_conv_example;
    Alcotest.test_case "dataflow: needs_buffer" `Quick test_needs_buffer;
    Alcotest.test_case "dataflow: downsampling window" `Quick
      test_needs_buffer_downsample;
    Alcotest.test_case "dataflow: constant streams" `Quick
      test_constant_streams;
    Alcotest.test_case "dataflow: misalignment detection" `Quick
      test_misalignment_detected;
    Alcotest.test_case "dataflow: rate mismatch" `Quick
      test_rate_mismatch_rejected;
    Alcotest.test_case "dataflow: token-method streams" `Quick
      test_token_method_stream;
    Alcotest.test_case "dataflow: elaborated consistency" `Quick
      test_elaborated_graph_consistency;
    Alcotest.test_case "dataflow: feedback worklist" `Quick
      test_feedback_worklist;
    Alcotest.test_case "dataflow: loop without init" `Quick
      test_feedback_without_init_rejected;
    Alcotest.test_case "dataflow: pad meta" `Quick test_pad_meta_analysis;
    Alcotest.test_case "stream: helpers" `Quick test_stream_helpers;
  ]

let test_fanout_write_words () =
  (* A port fanning out to two consumers writes its stream twice. *)
  let g = Graph.create () in
  let frame = Size.v 6 5 in
  let src = source_into g ~frame ~rate:(Rate.hz 10.) in
  let a = Graph.add g ~name:"a" (Arith.forward ()) in
  let b = Graph.add g ~name:"b" (Arith.forward ()) in
  let ca = Sink.collector () and cb = Sink.collector () in
  let sa = Graph.add g ~name:"sa" (Sink.spec ~window:Window.pixel ca ()) in
  let sb = Graph.add g ~name:"sb" (Sink.spec ~window:Window.pixel cb ()) in
  Graph.connect g ~from:(src, "out") ~into:(a, "in");
  Graph.connect g ~from:(src, "out") ~into:(b, "in");
  Graph.connect g ~from:(a, "out") ~into:(sa, "in");
  Graph.connect g ~from:(b, "out") ~into:(sb, "in");
  let an = Dataflow.analyze g in
  let src_info = Dataflow.info_of an src in
  Alcotest.(check (float 0.1)) "source writes both branches" 60.
    src_info.Dataflow.write_words_per_frame;
  let a_info = Dataflow.info_of an a in
  Alcotest.(check (float 0.1)) "forward reads one stream" 30.
    a_info.Dataflow.read_words_per_frame

let test_buffer_fires_accounting () =
  let g = Graph.create () in
  let frame = Size.v 8 6 in
  let src = source_into g ~frame ~rate:(Rate.hz 10.) in
  let med = Graph.add g (Median.spec ~w:3 ~h:3 ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(med, "in");
  Graph.connect g ~from:(med, "out") ~into:(sink, "in");
  ignore (Buffering.run g);
  let an = Dataflow.analyze g in
  let buf =
    List.find
      (fun (n : Graph.node) -> n.Graph.spec.Kernel.role = Kernel.Buffer)
      (Graph.nodes g)
  in
  let info = Dataflow.info_of an buf.Graph.id in
  (* 48 input pixels + 24 emitted windows. *)
  Alcotest.(check (float 0.1)) "buffer fires" (48. +. 24.)
    info.Dataflow.fires_per_frame;
  Alcotest.(check (float 0.1)) "buffer writes windows" (24. *. 9.)
    info.Dataflow.write_words_per_frame

let test_disjoint_pipelines_different_rates () =
  (* Two unconnected pipelines with different rates coexist in one graph
     and one simulation. *)
  let g = Graph.create () in
  let mk name frame rate seed =
    let frames = Image.Gen.frame_sequence ~seed frame 2 in
    let src =
      Graph.add g ~name
        ~meta:(Graph.Source_meta { frame; rate })
        (Source.spec ~class_name:name ~frame ~frames ())
    in
    let fwd = Graph.add g ~name:(name ^ "_f") (Arith.forward ()) in
    let c = Sink.collector () in
    let sink =
      Graph.add g ~name:(name ^ "_s") (Sink.spec ~window:Window.pixel c ())
    in
    Graph.connect g ~from:(src, "out") ~into:(fwd, "in");
    Graph.connect g ~from:(fwd, "out") ~into:(sink, "in");
    (c, frame)
  in
  let ca, fa = mk "fast" (Size.v 4 3) (Rate.hz 50.) 1 in
  let cb, fb = mk "slow" (Size.v 6 5) (Rate.hz 10.) 2 in
  ignore (Dataflow.analyze g);
  let result =
    Sim.run ~graph:g ~mapping:(Mapping.one_to_one g)
      ~machine:Machine.default ()
  in
  Alcotest.(check int) "clean" 0 result.Sim.leftover_items;
  Alcotest.(check int) "fast pixels" (2 * Size.area fa)
    (List.length (Sink.chunks ca));
  Alcotest.(check int) "slow pixels" (2 * Size.area fb)
    (List.length (Sink.chunks cb))

let suite =
  suite
  @ [
      Alcotest.test_case "dataflow: fanout write words" `Quick
        test_fanout_write_words;
      Alcotest.test_case "dataflow: buffer accounting" `Quick
        test_buffer_fires_accounting;
      Alcotest.test_case "sim: disjoint pipelines" `Quick
        test_disjoint_pipelines_different_rates;
    ]

let test_user_token_budgets () =
  (* A kernel handling a user token must declare a bound; the analysis
     accounts the handler's cycles at that rate. *)
  let retune = Token.User "retune" in
  let make_spec ~declared =
    let methods =
      [
        Method_spec.on_data ~cycles:3 ~name:"apply" ~inputs:[ "in" ]
          ~outputs:[ "out" ] ();
        Method_spec.on_token ~cycles:40 ~name:"retune" ~input:"in"
          ~kind:retune ~outputs:[] ();
      ]
    in
    Kernel.v ~class_name:"Tunable"
      ?token_budgets:(if declared then Some [ Token.Bound.v retune ~max_per_frame:5 ] else Some [])
      ~inputs:[ Port.input "in" Window.pixel ]
      ~outputs:[ Port.output "out" Window.pixel ]
      ~methods
      ~make_behaviour:(fun () ->
        Behaviour.iteration_kernel ~methods
          ~run:(fun _ ~alloc:_ inputs -> [ ("out", List.assoc "in" inputs) ])
          ())
      ()
  in
  (* Undeclared bound: rejected at spec construction. *)
  expect_error (Err.Invalid_parameterization "") (fun () ->
      ignore (make_spec ~declared:false));
  (* Declared: the analysis charges handler cycles at the bound. *)
  let g = Graph.create () in
  let frame = Size.v 6 5 in
  let src = source_into g ~frame ~rate:(Rate.hz 10.) in
  let k = Graph.add g (make_spec ~declared:true) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(k, "in");
  Graph.connect g ~from:(k, "out") ~into:(sink, "in");
  let an = Dataflow.analyze g in
  let info = Dataflow.info_of an k in
  (* 30 pixels x 3 cycles + 5 retunes x 40 cycles. *)
  Alcotest.(check (float 0.1)) "cycles include handlers"
    ((30. *. 3.) +. (5. *. 40.))
    info.Dataflow.compute_cycles_per_frame;
  Alcotest.(check (float 0.1)) "fires include handlers" 35.
    info.Dataflow.fires_per_frame

let suite =
  suite
  @ [
      Alcotest.test_case "dataflow: user token budgets" `Quick
        test_user_token_budgets;
    ]
