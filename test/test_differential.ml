(* Differential testing: random applications assembled from the kernel
   library are compiled, simulated, and compared pixel-for-pixel against a
   composed whole-frame reference computation. Every stage generator
   produces both the graph fragment and its golden transform, so any
   divergence anywhere in the compiler or runtime fails the property. *)

open Block_parallel
open Harness

type stage =
  | Blur3  (* 3x3 box convolution *)
  | Median3
  | Gain of float
  | Decimate2  (* 2x2 decimation *)
  | Diamond  (* median3 vs conv5 branches re-joined by subtraction *)
  | Edges  (* equal-depth gradient branches summed (no repair needed) *)
  | Expand  (* 2x zero-stuff upsampling, a block-producing stage *)

let stage_name = function
  | Blur3 -> "blur3"
  | Median3 -> "median3"
  | Gain k -> Printf.sprintf "gain%g" k
  | Decimate2 -> "decimate2"
  | Diamond -> "diamond"
  | Edges -> "edges"
  | Expand -> "expand"

let gx_coeffs =
  Image.of_scanline_list (Size.v 3 3) [ -1.; 0.; 1.; -2.; 0.; 2.; -1.; 0.; 1. ]

let box3 = Image.Gen.constant (Size.v 3 3) (1. /. 9.)
let box5 = Image.Gen.constant (Size.v 5 5) (1. /. 25.)

(* How much a stage shrinks the frame, to keep generated pipelines legal. *)
let min_extent_after stages (w0, h0) =
  List.fold_left
    (fun (w, h) stage ->
      match stage with
      | Blur3 | Median3 -> (w - 2, h - 2)
      | Gain _ -> (w, h)
      | Decimate2 -> (((w - 1) / 2) + 1, ((h - 1) / 2) + 1)
      | Diamond -> (w - 4, h - 4)
      | Edges -> (w - 2, h - 2)
      | Expand -> (2 * w, h))
    (w0, h0) stages

(* Append one stage to the graph under construction; [prev] is the live
   output endpoint. Returns the new endpoint and the golden transform. *)
let add_stage g idx prev stage =
  let name = Printf.sprintf "%s_%d" (stage_name stage) idx in
  match stage with
  | Blur3 ->
    let conv = Graph.add g ~name (Conv.spec ~w:3 ~h:3 ()) in
    let coeff =
      Graph.add g
        ~name:(name ^ "_coeff")
        (Source.const ~class_name:(name ^ "_coeff") ~chunk:box3 ())
    in
    Graph.connect g ~from:prev ~into:(conv, "in");
    Graph.connect g ~from:(coeff, "out") ~into:(conv, "coeff");
    ((conv, "out"), fun img -> Image_ops.convolve img ~kernel:box3)
  | Median3 ->
    let med = Graph.add g ~name (Median.spec ~w:3 ~h:3 ()) in
    Graph.connect g ~from:prev ~into:(med, "in");
    ((med, "out"), fun img -> Image_ops.median img ~w:3 ~h:3)
  | Gain k ->
    let gain = Graph.add g ~name (Arith.gain k) in
    Graph.connect g ~from:prev ~into:(gain, "in");
    ((gain, "out"), fun img -> Image_ops.gain img k)
  | Decimate2 ->
    let dec = Graph.add g ~name (Decimate.spec ~fx:2 ~fy:2 ()) in
    Graph.connect g ~from:prev ~into:(dec, "in");
    ((dec, "out"), fun img -> Image_ops.downsample img ~fx:2 ~fy:2)
  | Diamond ->
    let med = Graph.add g ~name:(name ^ "_med") (Median.spec ~w:3 ~h:3 ()) in
    let conv = Graph.add g ~name:(name ^ "_conv") (Conv.spec ~w:5 ~h:5 ()) in
    let coeff =
      Graph.add g
        ~name:(name ^ "_coeff")
        (Source.const ~class_name:(name ^ "_coeff") ~chunk:box5 ())
    in
    let sub = Graph.add g ~name:(name ^ "_sub") (Arith.subtract ()) in
    Graph.connect g ~from:prev ~into:(med, "in");
    Graph.connect g ~from:prev ~into:(conv, "in");
    Graph.connect g ~from:(coeff, "out") ~into:(conv, "coeff");
    Graph.connect g ~from:(med, "out") ~into:(sub, "in0");
    Graph.connect g ~from:(conv, "out") ~into:(sub, "in1");
    ( (sub, "out"),
      fun img ->
        (* Under the trim policy the deeper convolution branch wins; the
           median output loses one pixel per side. *)
        let med = Image_ops.median img ~w:3 ~h:3 in
        let conv = Image_ops.convolve img ~kernel:box5 in
        Image_ops.subtract
          (Image_ops.trim med ~left:1 ~right:1 ~top:1 ~bottom:1)
          conv )
  | Edges ->
    let gx = Graph.add g ~name:(name ^ "_gx") (Conv.spec ~w:3 ~h:3 ()) in
    let gy = Graph.add g ~name:(name ^ "_gy") (Conv.spec ~w:3 ~h:3 ()) in
    let cx =
      Graph.add g ~name:(name ^ "_cx")
        (Source.const ~class_name:(name ^ "_cx") ~chunk:gx_coeffs ())
    in
    let cy =
      Graph.add g ~name:(name ^ "_cy")
        (Source.const ~class_name:(name ^ "_cy") ~chunk:box3 ())
    in
    let sum = Graph.add g ~name:(name ^ "_sum") (Arith.add2 ()) in
    Graph.connect g ~from:prev ~into:(gx, "in");
    Graph.connect g ~from:prev ~into:(gy, "in");
    Graph.connect g ~from:(cx, "out") ~into:(gx, "coeff");
    Graph.connect g ~from:(cy, "out") ~into:(gy, "coeff");
    Graph.connect g ~from:(gx, "out") ~into:(sum, "in0");
    Graph.connect g ~from:(gy, "out") ~into:(sum, "in1");
    ( (sum, "out"),
      fun img ->
        Image_ops.(
          Image.map2 ( +. )
            (convolve img ~kernel:gx_coeffs)
            (convolve img ~kernel:box3)) )
  | Expand ->
    let up =
      Graph.add g ~name (Upsample.spec ~mode:Upsample.Zero_stuff ~fx:2 ~fy:1 ())
    in
    Graph.connect g ~from:prev ~into:(up, "in");
    ( (up, "out"),
      fun img -> Upsample.reference ~mode:Upsample.Zero_stuff ~fx:2 ~fy:1 img )

let run_case (w, h, seed, stages) =
  let frame = Size.v w h in
  let rate = Rate.hz 10. in
  let n_frames = 2 in
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  let endpoint, goldens =
    List.fold_left
      (fun ((prev, goldens), idx) stage ->
        let next, golden = add_stage g idx prev stage in
        ((next, golden :: goldens), idx + 1))
      (((src, "out"), []), 0)
      stages
    |> fst
  in
  Graph.connect g ~from:endpoint ~into:(sink, "in");
  let golden img =
    List.fold_left (fun acc f -> f acc) img (List.rev goldens)
  in
  let compiled = Pipeline.compile ~machine:Machine.default g in
  let result = Pipeline.simulate compiled ~greedy:true in
  let expected = List.map golden frames in
  let out_extent = Image.size (List.hd expected) in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list out_extent
          (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames collector)
  in
  result.Sim.leftover_items = 0
  && List.length got = n_frames
  && List.for_all2 (fun a b -> Image.max_abs_diff a b < 1e-9) expected got

let gen_stage =
  QCheck2.Gen.(
    oneof
      [
        return Blur3;
        return Median3;
        map (fun k -> Gain k) (float_range 0.5 2.);
        return Decimate2;
        return Diamond;
        return Edges;
      ])

let gen_case =
  QCheck2.Gen.(
    bind (pair (int_range 16 28) (int_range 14 22)) @@ fun (w, h) ->
    bind (int_range 1 3) @@ fun n ->
    bind (list_size (return n) gen_stage) @@ fun stages ->
    bind (int_range 0 1000) @@ fun seed -> return (w, h, seed, stages))

let differential =
  qtest ~count:30 "random pipelines match composed references" gen_case
    (fun ((w, h, _, stages) as case) ->
      let mw, mh = min_extent_after stages (w, h) in
      QCheck2.assume (mw >= 6 && mh >= 6);
      run_case case)

let fixed_cases =
  (* A few deterministic composites worth pinning regardless of the
     random draw. *)
  [
    (20, 16, 5, [ Blur3; Median3 ]);
    (24, 18, 9, [ Diamond; Gain 2. ]);
    (22, 20, 3, [ Decimate2; Blur3 ]);
    (26, 22, 7, [ Median3; Decimate2; Gain 0.5 ]);
    (28, 22, 2, [ Blur3; Diamond ]);
    (20, 16, 6, [ Edges; Gain 0.5 ]);
    (14, 12, 8, [ Expand; Blur3 ]);
    (16, 12, 4, [ Expand; Blur3; Decimate2 ]);
  ]

let test_fixed_composites () =
  List.iter
    (fun ((_, _, _, stages) as case) ->
      Alcotest.(check bool)
        (String.concat "+" (List.map stage_name stages))
        true (run_case case))
    fixed_cases

(* ---- engine equivalence -----------------------------------------------

   The event-driven scheduler (Sim) against the preserved polling engine
   (Sim_reference), over the full benchmark suite under both mappings.
   No suite application ever blocks an emitter, so the two engines must
   agree *bit-exactly* on everything observable: durations and busy
   times are compared as exact floats, not within a tolerance. Each
   engine gets its own freshly built instance (behaviour state and sink
   collectors are per-instance). *)

let result_signature (r : Sim.result) =
  let assoc l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  ( Array.to_list
      (Array.map
         (fun (p : Sim.proc_stats) ->
           (p.Sim.run_s, p.Sim.read_s, p.Sim.write_s, p.Sim.fires))
         r.Sim.procs),
    (r.Sim.input_stalls, r.Sim.late_emissions, r.Sim.max_input_lateness_s),
    assoc r.Sim.sink_eofs,
    assoc r.Sim.sink_first_data,
    List.sort compare
      (List.map
         (fun (id, (ns : Sim.node_stats)) ->
           (id, ns.Sim.node_fires, ns.Sim.node_busy_s))
         r.Sim.node_stats),
    List.sort compare r.Sim.channel_depths,
    (r.Sim.leftover_items, r.Sim.timed_out) )

let run_engine label ~greedy ~engine =
  let e = Apps.Suite.by_label label in
  let inst = e.Apps.Suite.build () in
  let compiled =
    Pipeline.compile ~machine:e.Apps.Suite.machine inst.App.graph
  in
  let mapping =
    if greedy then Pipeline.mapping_greedy compiled
    else Pipeline.mapping_one_to_one compiled
  in
  engine ~graph:compiled.Pipeline.graph ~mapping
    ~machine:e.Apps.Suite.machine ()

let test_engines_agree () =
  List.iter
    (fun label ->
      List.iter
        (fun greedy ->
          let tag =
            Printf.sprintf "%s/%s" label (if greedy then "greedy" else "1:1")
          in
          let reference =
            run_engine label ~greedy ~engine:(fun ~graph ~mapping ~machine () ->
                Sim_reference.run ~graph ~mapping ~machine ())
          in
          let fresh =
            run_engine label ~greedy ~engine:(fun ~graph ~mapping ~machine () ->
                Sim.run ~graph ~mapping ~machine ())
          in
          Alcotest.(check (float 0.))
            (tag ^ ": duration bit-exact")
            reference.Sim.duration_s fresh.Sim.duration_s;
          Alcotest.(check int)
            (tag ^ ": events processed")
            reference.Sim.events_processed fresh.Sim.events_processed;
          Alcotest.(check bool)
            (tag ^ ": full result signature")
            true
            (result_signature reference = result_signature fresh))
        [ false; true ])
    Apps.Suite.labels

let suite =
  [
    Alcotest.test_case "fixed composites" `Slow test_fixed_composites;
    differential;
    Alcotest.test_case "engines agree over the whole suite" `Slow
      test_engines_agree;
  ]
