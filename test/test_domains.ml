(* Tests for the sharded sweep layer (docs/PARALLELISM.md): merged
   results are bit-exact whatever the domain count, worker pools stay
   leak-free under balanced borrowing, failures propagate with the
   lowest submission index winning, and parallel rate search records
   exactly the serial probe sequence. *)

open Block_parallel

(* The full determinism contract of a run: every simulated field,
   compared with exact float equality. [result.pool] is deliberately
   excluded — against a warm per-domain pool the hit/miss split depends
   on which worker ran the task (telemetry, not outcome). *)
let result_signature (r : Sim.result) =
  let assoc l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  ( Array.to_list
      (Array.map
         (fun (p : Sim.proc_stats) ->
           (p.Sim.run_s, p.Sim.read_s, p.Sim.write_s, p.Sim.fires))
         r.Sim.procs),
    (r.Sim.input_stalls, r.Sim.late_emissions, r.Sim.max_input_lateness_s),
    assoc r.Sim.sink_eofs,
    assoc r.Sim.sink_first_data,
    List.sort compare
      (List.map
         (fun (id, (ns : Sim.node_stats)) ->
           (id, ns.Sim.node_fires, ns.Sim.node_busy_s))
         r.Sim.node_stats),
    List.sort compare r.Sim.channel_depths,
    (r.Sim.leftover_items, r.Sim.events_processed, r.Sim.timed_out) )

let suite_jobs () =
  List.concat_map
    (fun (e : Apps.Suite.entry) ->
      List.map
        (fun policy ->
          {
            Sweep.label = e.Apps.Suite.label;
            machine = e.Apps.Suite.machine;
            policy;
            build = (fun () -> (e.Apps.Suite.build ()).App.graph);
          })
        [ Plan.One_to_one; Plan.Greedy ])
    Apps.Suite.entries

let outcome_key (o : Sweep.outcome) =
  ( o.Sweep.o_label,
    (match o.Sweep.o_policy with
    | Plan.One_to_one -> "1:1"
    | Plan.Greedy -> "greedy"),
    result_signature o.Sweep.o_result )

(* The tentpole's acceptance bar: the merged sweep over all eleven suite
   apps under both mappings is bit-identical at -j 1 and -j 4 — same
   order, same labels, exact-equal floats and event counts. *)
let test_sweep_deterministic () =
  let run domains =
    Sweep.with_pool ~domains @@ fun pool ->
    List.map outcome_key (Sweep.simulate_jobs pool (suite_jobs ()))
  in
  let serial = run 1 in
  let sharded = run 4 in
  Alcotest.(check int)
    "22 outcomes (11 apps x 2 mappings)" 22 (List.length serial);
  List.iter2
    (fun (l1, p1, s1) (l4, p4, s4) ->
      Alcotest.(check string) "label order preserved" l1 l4;
      Alcotest.(check string) (l1 ^ " policy order preserved") p1 p4;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s bit-exact at -j 4" l1 p1)
        true (s1 = s4))
    serial sharded

(* Every task is accounted to exactly one worker and the merge preserves
   submission order even when tasks are dealt across domains. *)
let test_map_order_and_accounting () =
  Sweep.with_pool ~domains:3 @@ fun pool ->
  let input = List.init 50 Fun.id in
  let doubled = Sweep.map pool (fun ctx x -> (x * 2, ctx.Sweep.domain)) input in
  Alcotest.(check (list int))
    "submission order" (List.map (fun x -> x * 2) input)
    (List.map fst doubled);
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "domain index in range" true (d >= 0 && d < 3))
    doubled;
  let total_tasks =
    List.fold_left
      (fun acc (d : Sweep.domain_report) -> acc + d.Sweep.d_tasks)
      0 (Sweep.report pool)
  in
  Alcotest.(check int) "every task accounted once" 50 total_tasks

(* Balanced borrow tasks: each task acquires scratch chunks from its
   worker's own pool and releases them all, so the per-domain leak check
   passes — and the pools really were used (some acquires happened). *)
let test_per_domain_no_live_leaks () =
  Sweep.with_pool ~domains:4 @@ fun pool ->
  let _ =
    Sweep.map pool
      (fun ctx i ->
        let s = Size.v (4 + (i mod 3)) 3 in
        let a = Pool.acquire ctx.Sweep.chunk_pool s in
        let b = Pool.acquire ctx.Sweep.chunk_pool s in
        Pool.release ctx.Sweep.chunk_pool a;
        Pool.release ctx.Sweep.chunk_pool b;
        i)
      (List.init 40 Fun.id)
  in
  Sweep.check_no_live_leaks pool;
  let acquires =
    List.fold_left
      (fun acc (d : Sweep.domain_report) ->
        acc + d.Sweep.d_pool.Pool.hits + d.Sweep.d_pool.Pool.misses)
      0 (Sweep.report pool)
  in
  Alcotest.(check int) "80 acquires across worker pools" 80 acquires

(* A crashing task fails the whole batch with the original exception; on
   concurrent failures the lowest submission index wins, and the pool
   survives to run the next batch. *)
let test_crash_propagates () =
  Sweep.with_pool ~domains:4 @@ fun pool ->
  (match
     Sweep.map pool
       (fun _ctx i -> if i >= 5 then failwith (Printf.sprintf "task %d" i))
       (List.init 20 Fun.id)
   with
  | _ -> Alcotest.fail "expected the batch to raise"
  | exception Failure msg ->
    Alcotest.(check string) "lowest failing index wins" "task 5" msg);
  let survivors = Sweep.map pool (fun _ctx x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "pool usable after failure" [ 2; 3; 4 ] survivors

(* Speculative parallel rate search replays the serial bisection: the
   recorded probe list and the winner are identical, probe for probe. *)
let test_rate_search_probes_identical () =
  let build ~rate_hz =
    (Apps.Histogram_app.v ~frame:(Size.v 24 18) ~rate:(Rate.hz rate_hz)
       ~n_frames:2 ())
      .App.graph
  in
  let serial =
    Rate_search.search ~iterations:6 ~machine:Machine.default ~max_pes:8 build
  in
  let sharded =
    Sweep.with_pool ~domains:4 @@ fun pool ->
    Rate_search.search ~pool ~iterations:6 ~machine:Machine.default ~max_pes:8
      build
  in
  Alcotest.(check int)
    "a real bisection happened (lo, hi, 6 midpoints)" 8
    (List.length serial.Rate_search.probes);
  Alcotest.(check bool) "identical probes and winner" true (serial = sharded)

let suite =
  [
    Alcotest.test_case "suite sweep bit-exact -j1 vs -j4" `Slow
      test_sweep_deterministic;
    Alcotest.test_case "map order and task accounting" `Quick
      test_map_order_and_accounting;
    Alcotest.test_case "per-domain pools leak-free" `Quick
      test_per_domain_no_live_leaks;
    Alcotest.test_case "crash in task propagates" `Quick test_crash_propagates;
    Alcotest.test_case "rate search probes identical under -j" `Slow
      test_rate_search_probes_identical;
  ]
