(* Tests for the kernel model: ports, methods, spec validation, and the
   generic iteration-kernel runtime wrapper (token semantics included). *)

open Block_parallel
open Harness

(* ---- ports & methods --------------------------------------------------- *)

let test_port_buffer_words () =
  let p = Port.input "in" (Conv.input_window ~w:5 ~h:5) in
  Alcotest.(check int) "double-buffered iteration" 50 (Port.buffer_words p);
  Alcotest.(check bool) "not replicated by default" false p.Port.replicated;
  let r = Port.input ~replicated:true "coeff" (Window.block 5 5) in
  Alcotest.(check bool) "replicated" true r.Port.replicated

let test_port_find () =
  let ports = [ Port.input "a" Window.pixel; Port.input "b" Window.pixel ] in
  Alcotest.(check string) "found" "b" (Port.find ports "b").Port.name;
  expect_error (Err.Graph_malformed "") (fun () -> Port.find ports "zz")

let test_method_validation () =
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Method_spec.on_data ~name:"m" ~inputs:[] ~outputs:[] ());
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Method_spec.on_data ~name:"m" ~inputs:[ "a"; "a" ] ~outputs:[] ());
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Method_spec.on_data ~cycles:(-1) ~name:"m" ~inputs:[ "a" ] ~outputs:[] ())

let test_method_trigger_inputs () =
  let m = Method_spec.on_data ~name:"m" ~inputs:[ "a"; "b" ] ~outputs:[] () in
  Alcotest.(check (list string)) "data inputs" [ "a"; "b" ]
    (Method_spec.trigger_inputs m);
  let t =
    Method_spec.on_token ~name:"t" ~input:"a" ~kind:Token.End_of_frame
      ~outputs:[] ()
  in
  Alcotest.(check (list string)) "token input" [ "a" ]
    (Method_spec.trigger_inputs t)

(* ---- spec validation --------------------------------------------------- *)

let dummy_behaviour () = Behaviour.v (fun _ -> None)

let test_spec_rejects_duplicate_ports () =
  expect_error (Err.Graph_malformed "") (fun () ->
      Kernel.v ~class_name:"bad"
        ~inputs:[ Port.input "in" Window.pixel; Port.input "in" Window.pixel ]
        ~outputs:[] ~methods:[] ~make_behaviour:dummy_behaviour ())

let test_spec_rejects_unknown_method_port () =
  expect_error (Err.Graph_malformed "") (fun () ->
      Kernel.v ~class_name:"bad"
        ~inputs:[ Port.input "in" Window.pixel ]
        ~outputs:[]
        ~methods:
          [ Method_spec.on_data ~name:"m" ~inputs:[ "nope" ] ~outputs:[] () ]
        ~make_behaviour:dummy_behaviour ())

let test_spec_rejects_undrained_input () =
  expect_error (Err.Graph_malformed "") (fun () ->
      Kernel.v ~class_name:"bad"
        ~inputs:[ Port.input "in" Window.pixel; Port.input "other" Window.pixel ]
        ~outputs:[]
        ~methods:
          [ Method_spec.on_data ~name:"m" ~inputs:[ "in" ] ~outputs:[] () ]
        ~make_behaviour:dummy_behaviour ())

let test_spec_rejects_shared_trigger () =
  expect_error (Err.Graph_malformed "") (fun () ->
      Kernel.v ~class_name:"bad"
        ~inputs:[ Port.input "in" Window.pixel ]
        ~outputs:[]
        ~methods:
          [
            Method_spec.on_data ~name:"m1" ~inputs:[ "in" ] ~outputs:[] ();
            Method_spec.on_data ~name:"m2" ~inputs:[ "in" ] ~outputs:[] ();
          ]
        ~make_behaviour:dummy_behaviour ())

let test_spec_memory_and_lookup () =
  let s = Conv.spec ~w:5 ~h:5 () in
  (* state 25 + in 2*25 + coeff 2*25 + out 2*1 *)
  Alcotest.(check int) "memory words" (25 + 50 + 50 + 2)
    (Kernel.memory_words s);
  Alcotest.(check int) "cycles lookup" (Costs.convolve ~w:5 ~h:5)
    (Kernel.cycles_of_method s "runConvolve");
  expect_error (Err.Graph_malformed "") (fun () ->
      Kernel.find_method s "nope");
  Alcotest.(check string) "rename" "Other"
    (Kernel.rename s "Other").Kernel.class_name

let test_spec_replica () =
  let s = Conv.spec ~w:3 ~h:3 () in
  Alcotest.(check bool) "conv data parallel" true (Kernel.is_data_parallel s);
  let r = Kernel.replica_spec s ~replica:1 ~ways:3 in
  Alcotest.(check string) "same spec for data-parallel" s.Kernel.class_name
    r.Kernel.class_name;
  let m = Histogram.merge ~bins:4 () in
  Alcotest.(check bool) "merge serial" false (Kernel.is_data_parallel m);
  expect_error (Err.Unsupported "") (fun () ->
      Kernel.replica_spec m ~replica:0 ~ways:2)

(* ---- the iteration-kernel wrapper -------------------------------------- *)

let test_wrapper_data_fire () =
  let b = bench (Arith.gain 2.) in
  b.feed "in" (px 3.);
  (match b.step () with
  | Some f ->
    Alcotest.(check string) "method" "run" f.Behaviour.method_name;
    Alcotest.(check int) "cycles" Costs.gain f.Behaviour.cycles
  | None -> Alcotest.fail "expected a firing");
  match data_chunks (b.out "out") with
  | [ img ] -> Alcotest.(check (float 1e-9)) "doubled" 6. (Image.get img ~x:0 ~y:0)
  | _ -> Alcotest.fail "expected exactly one chunk"

let test_wrapper_blocks_when_empty () =
  let b = bench (Arith.gain 2.) in
  Alcotest.(check bool) "idle on empty input" true (b.step () = None)

let test_wrapper_token_forwarding () =
  let b = bench (Arith.gain 2.) in
  b.feed "in" (Item.ctl (Token.eof 0));
  (match b.step () with
  | Some f ->
    Alcotest.(check string) "forward pseudo-method"
      Behaviour.forward_method_name f.Behaviour.method_name
  | None -> Alcotest.fail "expected token forward");
  match tokens_of (b.out "out") with
  | [ t ] -> Alcotest.(check bool) "eof" true (t.Token.kind = Token.End_of_frame)
  | _ -> Alcotest.fail "expected one forwarded token"

let test_wrapper_matched_tokens () =
  let b = bench (Arith.subtract ()) in
  (* A token on only one input must not fire or forward. *)
  b.feed "in0" (Item.ctl (Token.eof 0));
  Alcotest.(check bool) "blocked on mixed fronts" true (b.step () = None);
  b.feed "in1" (Item.ctl (Token.eof 0));
  Alcotest.(check bool) "fires when matched" true (b.step () <> None);
  Alcotest.(check int) "forwarded once" 1 (List.length (b.out "out"))

let test_wrapper_mixed_fronts_block () =
  let b = bench (Arith.subtract ()) in
  b.feed "in0" (px 5.);
  b.feed "in1" (Item.ctl (Token.eof 0));
  Alcotest.(check bool) "data+token blocks" true (b.step () = None)

let test_wrapper_token_handler () =
  let b = bench (Histogram.spec ~bins:4 ()) in
  (* Configure bins, count two pixels, then EOF triggers finishCount. *)
  b.feed "bins" (Item.data (Histogram.bin_lower_bounds ~bins:4 ~lo:0. ~hi:4.));
  ignore (b.run_to_idle ());
  b.feed "in" (px 0.5);
  b.feed "in" (px 2.5);
  b.feed "in" (Item.ctl (Token.eof 0));
  ignore (b.run_to_idle ());
  match b.out "out" with
  | [ Item.Data hist; Item.Ctl tok ] ->
    Alcotest.(check (float 0.)) "bin 0" 1. (Image.get hist ~x:0 ~y:0);
    Alcotest.(check (float 0.)) "bin 2" 1. (Image.get hist ~x:2 ~y:0);
    Alcotest.(check bool) "token after data" true
      (tok.Token.kind = Token.End_of_frame)
  | items -> Alcotest.failf "unexpected output shape (%d items)" (List.length items)

let test_wrapper_handler_resets_state () =
  let b = bench (Histogram.spec ~bins:4 ()) in
  b.feed "bins" (Item.data (Histogram.bin_lower_bounds ~bins:4 ~lo:0. ~hi:4.));
  b.feed "in" (px 1.5);
  b.feed "in" (Item.ctl (Token.eof 0));
  b.feed "in" (px 1.5);
  b.feed "in" (Item.ctl (Token.eof 1));
  ignore (b.run_to_idle ());
  match data_chunks (b.out "out") with
  | [ h1; h2 ] ->
    Alcotest.(check (float 0.)) "frame 1 count" 1. (Image.get h1 ~x:1 ~y:0);
    Alcotest.(check (float 0.)) "frame 2 count reset" 1.
      (Image.get h2 ~x:1 ~y:0)
  | l -> Alcotest.failf "expected two histograms, got %d" (List.length l)

let test_wrapper_respects_space () =
  let b = bench ~capacity:0 (Arith.gain 1.) in
  b.feed "in" (px 1.);
  Alcotest.(check bool) "no space, no fire" true (b.step () = None)

let test_wrapper_eol_dropped_without_outputs () =
  (* The histogram's count method has no outputs, so EOL tokens vanish. *)
  let b = bench (Histogram.spec ~bins:4 ()) in
  b.feed "in" (Item.ctl (Token.eol 0));
  ignore (b.run_to_idle ());
  Alcotest.(check int) "nothing forwarded" 0 (List.length (b.out "out"))

let test_wrapper_undeclared_output_rejected () =
  let methods =
    [ Method_spec.on_data ~name:"m" ~inputs:[ "in" ] ~outputs:[ "out" ] () ]
  in
  let rogue _m ~alloc:_ _inputs = [ ("other", Image.Gen.constant Size.one 0.) ] in
  let spec =
    Kernel.v ~class_name:"rogue"
      ~inputs:[ Port.input "in" Window.pixel ]
      ~outputs:[ Port.output "out" Window.pixel ]
      ~methods
      ~make_behaviour:(fun () ->
        Behaviour.iteration_kernel ~methods ~run:rogue ())
      ()
  in
  let b = bench spec in
  b.feed "in" (px 1.);
  expect_error (Err.Graph_malformed "") (fun () -> b.step ())

let test_item_accessors () =
  let d = px 3. in
  Alcotest.(check bool) "is_data" true (Item.is_data d);
  Alcotest.(check int) "data words" 1 (Item.words d);
  let t = Item.ctl (Token.eof 2) in
  Alcotest.(check bool) "is_ctl" true (Item.is_ctl t);
  Alcotest.(check int) "token words" 1 (Item.words t);
  (try
     ignore (Item.chunk_exn t);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ());
  try
    ignore (Item.token_exn d);
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

let test_token_module () =
  Alcotest.(check bool) "kind equal" true
    (Token.kind_equal (Token.User "a") (Token.User "a"));
  Alcotest.(check bool) "kind differs" false
    (Token.kind_equal (Token.User "a") (Token.User "b"));
  Alcotest.(check bool) "eol vs eof" false
    (Token.kind_equal Token.End_of_line Token.End_of_frame);
  Alcotest.(check bool) "equal" true (Token.equal (Token.eof 3) (Token.eof 3));
  Alcotest.(check bool) "seq matters" false
    (Token.equal (Token.eof 3) (Token.eof 4));
  let b = Token.Bound.v (Token.User "retune") ~max_per_frame:2 in
  Alcotest.(check int) "budget cycles" 10
    (Token.Bound.handler_cycles_per_frame b ~handler_cycles:5);
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Token.Bound.v Token.End_of_line ~max_per_frame:(-1))

let suite =
  [
    Alcotest.test_case "port: buffer words" `Quick test_port_buffer_words;
    Alcotest.test_case "port: find" `Quick test_port_find;
    Alcotest.test_case "method: validation" `Quick test_method_validation;
    Alcotest.test_case "method: trigger inputs" `Quick
      test_method_trigger_inputs;
    Alcotest.test_case "spec: duplicate ports" `Quick
      test_spec_rejects_duplicate_ports;
    Alcotest.test_case "spec: unknown method port" `Quick
      test_spec_rejects_unknown_method_port;
    Alcotest.test_case "spec: undrained input" `Quick
      test_spec_rejects_undrained_input;
    Alcotest.test_case "spec: shared trigger" `Quick
      test_spec_rejects_shared_trigger;
    Alcotest.test_case "spec: memory/lookup" `Quick test_spec_memory_and_lookup;
    Alcotest.test_case "spec: replica policy" `Quick test_spec_replica;
    Alcotest.test_case "wrapper: data fire" `Quick test_wrapper_data_fire;
    Alcotest.test_case "wrapper: idle when empty" `Quick
      test_wrapper_blocks_when_empty;
    Alcotest.test_case "wrapper: token forwarding" `Quick
      test_wrapper_token_forwarding;
    Alcotest.test_case "wrapper: matched tokens" `Quick
      test_wrapper_matched_tokens;
    Alcotest.test_case "wrapper: mixed fronts block" `Quick
      test_wrapper_mixed_fronts_block;
    Alcotest.test_case "wrapper: token handler" `Quick
      test_wrapper_token_handler;
    Alcotest.test_case "wrapper: handler resets state" `Quick
      test_wrapper_handler_resets_state;
    Alcotest.test_case "wrapper: space respected" `Quick
      test_wrapper_respects_space;
    Alcotest.test_case "wrapper: EOL dropped without outputs" `Quick
      test_wrapper_eol_dropped_without_outputs;
    Alcotest.test_case "wrapper: undeclared output" `Quick
      test_wrapper_undeclared_output_rejected;
    Alcotest.test_case "item: accessors" `Quick test_item_accessors;
    Alcotest.test_case "token: module" `Quick test_token_module;
  ]
