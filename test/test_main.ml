let () =
  Alcotest.run "block-parallel"
    [
      ("util", Test_util.suite);
      ("geometry", Test_geometry.suite);
      ("image", Test_image.suite);
      ("pool", Test_pool.suite);
      ("kernel", Test_kernel.suite);
      ("kernels", Test_kernels.suite);
      ("graph", Test_graph.suite);
      ("analysis", Test_analysis.suite);
      ("transform", Test_transform.suite);
      ("sim", Test_sim.suite);
      ("plan", Test_plan.suite);
      ("schedule", Test_schedule.suite);
      ("placement", Test_placement.suite);
      ("lang", Test_lang.suite);
      ("extensions", Test_extensions.suite);
      ("coverage", Test_coverage.suite);
      ("differential", Test_differential.suite);
      ("sweeps", Test_sweeps.suite);
      ("domains", Test_domains.suite);
      ("report", Test_report.suite);
      ("obs", Test_obs.suite);
      ("integration", Test_integration.suite);
    ]
