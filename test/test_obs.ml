(* Tests for the observability layer (lib/obs): the metrics registry, the
   instrumentation contract of docs/OBSERVABILITY.md, Chrome-trace export
   (valid JSON, monotone timestamps, one track per PE, counter tracks),
   compile-pass timings, and — crucially — that observers are passive: a
   run's result is identical with and without them. *)

open Block_parallel

(* ---- a tiny validating JSON reader ------------------------------------ *)
(* The repo deliberately has no JSON dependency; this reader exists so the
   tests can assert "python -m json.tool would accept this" in-process. *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos >= n then bad "eof" else s.[!pos] in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then bad (Printf.sprintf "expected %c" c);
    incr pos
  in
  let lit l v =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
    then begin
      pos := !pos + String.length l;
      v
    end
    else bad ("expected " ^ l)
  in
  let parse_string () =
    expect '"';
    let buf = Stdlib.Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (match peek () with
        | '"' -> Stdlib.Buffer.add_char buf '"'
        | '\\' -> Stdlib.Buffer.add_char buf '\\'
        | '/' -> Stdlib.Buffer.add_char buf '/'
        | 'b' -> Stdlib.Buffer.add_char buf '\b'
        | 'f' -> Stdlib.Buffer.add_char buf '\012'
        | 'n' -> Stdlib.Buffer.add_char buf '\n'
        | 'r' -> Stdlib.Buffer.add_char buf '\r'
        | 't' -> Stdlib.Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then bad "bad \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
            with _ -> bad "bad \\u escape"
          in
          pos := !pos + 4;
          (* Our writer only \u-escapes control characters, so a one-byte
             decode is enough for the round-trip check. *)
          if code < 0x80 then Stdlib.Buffer.add_char buf (Char.chr code)
          else Stdlib.Buffer.add_char buf '?'
        | _ -> bad "bad escape");
        incr pos;
        go ()
      | c when Char.code c < 0x20 -> bad "raw control char in string"
      | c ->
        Stdlib.Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Stdlib.Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> JNum f
    | None -> bad ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        JObj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            fields ((k, v) :: acc)
          | '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> bad "expected , or }"
        in
        JObj (fields [])
      end
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        JList []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            items (v :: acc)
          | ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> bad "expected , or ]"
        in
        JList (items [])
      end
    | '"' -> JStr (parse_string ())
    | 't' -> lit "true" (JBool true)
    | 'f' -> lit "false" (JBool false)
    | 'n' -> lit "null" JNull
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage";
  v

let field name = function
  | JObj fields -> List.assoc_opt name fields
  | _ -> None

(* ---- fixtures ---------------------------------------------------------- *)

(* Source -> Forward -> Sink on a 4x3 frame: every count below is
   hand-computable. One frame is 12 pixels + 3 end-of-line + 1 end-of-frame
   = 16 items; the forward kernel fires once per item (12 data fires + 4
   token forwards). *)
let tiny () =
  let frame = Size.v 4 3 in
  let frames = Image.Gen.frame_sequence ~seed:7 frame 1 in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 50. })
      (Source.spec ~frame ~frames ())
  in
  let fwd = Graph.add g (Arith.forward ()) in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  Graph.connect g ~from:(src, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(sink, "in");
  (g, fwd)

let instrumented_run ?sample_limit g =
  let obs = Instrument.create ?sample_limit ~graph:g () in
  let trace, trace_observer = Trace.recorder () in
  let observer =
    Instrument.compose [ trace_observer; Instrument.observer obs ]
  in
  let result =
    Sim.run ~observer
      ~channel_observer:(Instrument.channel_observer obs)
      ~graph:g ~mapping:(Mapping.one_to_one g) ~machine:Machine.default ()
  in
  Instrument.finalize obs ~result;
  (obs, trace, result)

(* Run with the full health instrumentation attached and finalized. *)
let health_run ?(greedy = false) g ~machine =
  let h = Health.create ~graph:g () in
  let mapping =
    if greedy then
      Mapping.of_groups g
        (Multiplex.greedy machine g)
    else Mapping.one_to_one g
  in
  let result =
    Sim.run ~state_observer:(Health.state_observer h) ~graph:g ~mapping
      ~machine ()
  in
  Health.finalize h ~result ();
  (h, result)

let compiled_pipeline () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:2 ()
  in
  Pipeline.compile ~machine:Machine.default inst.App.graph

(* ---- metrics registry -------------------------------------------------- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  Alcotest.(check int) "counter" 5 (Metrics.counter m "c");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter m "nope");
  Metrics.set m "g" 2.5;
  Metrics.set_max m "g" 1.0;
  Alcotest.(check (float 0.)) "set_max keeps high water" 2.5
    (Option.get (Metrics.gauge m "g"));
  Metrics.set_max m "g" 7.0;
  Alcotest.(check (float 0.)) "set_max raises" 7.0
    (Option.get (Metrics.gauge m "g"));
  Metrics.add m "acc" 1.5;
  Metrics.add m "acc" 1.5;
  Alcotest.(check (float 1e-12)) "add accumulates" 3.0
    (Option.get (Metrics.gauge m "acc"));
  Metrics.observe m "h" 1e-6;
  Metrics.observe m "h" 3e-6;
  let h = Option.get (Metrics.histogram m "h") in
  Alcotest.(check int) "hist count" 2 h.Metrics.h_count;
  Alcotest.(check (float 1e-18)) "hist sum" 4e-6 h.Metrics.h_sum;
  Alcotest.(check (float 1e-18)) "hist min" 1e-6 h.Metrics.h_min;
  Alcotest.(check (float 1e-18)) "hist max" 3e-6 h.Metrics.h_max;
  Alcotest.(check (float 1e-18)) "hist mean" 2e-6 h.Metrics.h_mean

let test_metrics_kind_clash () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "counter used as gauge"
    (Invalid_argument "Metrics: x is a counter, used as a gauge") (fun () ->
      Metrics.set m "x" 1.)

let test_metrics_json_valid () =
  let m = Metrics.create () in
  Metrics.incr m "weird \"name\"\n";
  Metrics.observe m "h" 0.5;
  Metrics.set m "g" 0.25;
  match parse_json (Obs_json.to_string (Metrics.to_json m)) with
  | JObj [ ("metrics", JList entries) ] ->
    Alcotest.(check int) "three entries" 3 (List.length entries);
    List.iter
      (fun e ->
        match (field "name" e, field "kind" e) with
        | Some (JStr _), Some (JStr k) ->
          Alcotest.(check bool) "known kind" true
            (List.mem k [ "counter"; "gauge"; "histogram" ])
        | _ -> Alcotest.fail "entry missing name/kind")
      entries
  | _ -> Alcotest.fail "unexpected metrics JSON shape"

(* ---- the instrumentation contract on a hand-computed graph ------------- *)

let test_tiny_counts () =
  let g, fwd = tiny () in
  let obs, _, result = instrumented_run g in
  let m = Instrument.metrics obs in
  let fwd_name = (Graph.node g fwd).Graph.name in
  (* 12 pixels + 3 EOL + 1 EOF, one fire per item. *)
  Alcotest.(check int) "forward fires" 16
    (Metrics.counter m (Printf.sprintf "kernel.%s.fires" fwd_name));
  let svc =
    Option.get
      (Metrics.histogram m (Printf.sprintf "kernel.%s.service_s" fwd_name))
  in
  Alcotest.(check int) "one service sample per fire" 16 svc.Metrics.h_count;
  (* Both channels carry the same 16 items end to end. *)
  List.iter
    (fun (c : Graph.channel) ->
      let id = c.Graph.chan_id in
      Alcotest.(check int)
        (Printf.sprintf "chan %d pushes" id)
        16
        (Metrics.counter m (Printf.sprintf "chan.%d.pushes" id));
      Alcotest.(check int)
        (Printf.sprintf "chan %d pops" id)
        16
        (Metrics.counter m (Printf.sprintf "chan.%d.pops" id)))
    (Graph.channels g);
  (* Cross-check against the simulator's own accounting. *)
  List.iter
    (fun (id, (ns : Sim.node_stats)) ->
      let name = (Graph.node g id).Graph.name in
      if Mapping.is_on_chip (Graph.node g id) then
        Alcotest.(check int)
          (Printf.sprintf "%s fires agree" name)
          ns.Sim.node_fires
          (Metrics.counter m (Printf.sprintf "kernel.%s.fires" name)))
    result.Sim.node_stats;
  (* PE accounting: one on-chip kernel on PE 0. *)
  Alcotest.(check int) "pe fires" 16 (Metrics.counter m "pe.0.fires");
  let busy = Option.get (Metrics.gauge m "pe.0.busy_s") in
  let idle = Option.get (Metrics.gauge m "pe.0.idle_s") in
  Alcotest.(check (float 1e-9)) "busy+idle = duration"
    result.Sim.duration_s (busy +. idle);
  Alcotest.(check (float 1e-9)) "util = busy/duration"
    (busy /. result.Sim.duration_s)
    (Option.get (Metrics.gauge m "pe.0.util"));
  Alcotest.(check (float 0.)) "no stalls" 0.
    (float_of_int (Metrics.counter m "sim.input_stalls"));
  Alcotest.(check (float 0.)) "nothing leftover" 0.
    (float_of_int (Metrics.counter m "sim.leftover_items"))

let test_tiny_series_monotone () =
  let g, _ = tiny () in
  let obs, _, _ = instrumented_run g in
  let series = Instrument.channel_series obs in
  Alcotest.(check int) "two channels" 2 (List.length series);
  List.iter
    (fun (id, samples) ->
      Alcotest.(check bool)
        (Printf.sprintf "chan %d has samples" id)
        true (samples <> []);
      (* 16 pushes + 16 pops. *)
      Alcotest.(check int)
        (Printf.sprintf "chan %d sample count" id)
        32 (List.length samples);
      let rec monotone = function
        | (t0, _) :: ((t1, _) :: _ as rest) ->
          t0 <= t1 +. 1e-15 && monotone rest
        | _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "chan %d series monotone" id)
        true (monotone samples);
      List.iter
        (fun (_, depth) ->
          Alcotest.(check bool) "depth in range" true (depth >= 0))
        samples)
    series

let test_sample_limit () =
  let g, _ = tiny () in
  let obs, _, _ = instrumented_run ~sample_limit:5 g in
  List.iter
    (fun (id, samples) ->
      Alcotest.(check int)
        (Printf.sprintf "chan %d capped" id)
        5 (List.length samples);
      Alcotest.(check int)
        (Printf.sprintf "chan %d drop count" id)
        27
        (Metrics.counter (Instrument.metrics obs)
           (Printf.sprintf "chan.%d.samples_dropped" id)))
    (Instrument.channel_series obs)

(* ---- observers are passive --------------------------------------------- *)

let test_differential_observer_free () =
  let compiled = compiled_pipeline () in
  let g = compiled.Pipeline.graph in
  let machine = compiled.Pipeline.machine in
  let run_with_obs () =
    let mapping = Pipeline.mapping_greedy compiled in
    let obs = Instrument.create ~graph:g () in
    let h = Health.create ~graph:g () in
    let result =
      Sim.run
        ~observer:(Instrument.observer obs)
        ~channel_observer:(Instrument.channel_observer obs)
        ~state_observer:(Health.state_observer h)
        ~graph:g ~mapping ~machine ()
    in
    Instrument.finalize obs ~result;
    Health.finalize h ~result ();
    result
  in
  let run_bare () =
    let mapping = Pipeline.mapping_greedy compiled in
    Sim.run ~graph:g ~mapping ~machine ()
  in
  let a = run_with_obs () and b = run_bare () in
  Alcotest.(check (float 0.)) "duration identical" b.Sim.duration_s
    a.Sim.duration_s;
  Alcotest.(check int) "stalls identical" b.Sim.input_stalls a.Sim.input_stalls;
  Alcotest.(check int) "late identical" b.Sim.late_emissions a.Sim.late_emissions;
  Alcotest.(check int) "leftover identical" b.Sim.leftover_items
    a.Sim.leftover_items;
  Alcotest.(check int) "PE count identical" (Array.length b.Sim.procs)
    (Array.length a.Sim.procs);
  Array.iteri
    (fun i (pb : Sim.proc_stats) ->
      let pa = a.Sim.procs.(i) in
      Alcotest.(check int) "fires identical" pb.Sim.fires pa.Sim.fires;
      Alcotest.(check (float 0.)) "run_s identical" pb.Sim.run_s pa.Sim.run_s;
      Alcotest.(check (float 0.)) "read_s identical" pb.Sim.read_s pa.Sim.read_s;
      Alcotest.(check (float 0.)) "write_s identical" pb.Sim.write_s
        pa.Sim.write_s)
    b.Sim.procs;
  Alcotest.(check bool) "depths identical" true
    (List.sort compare a.Sim.channel_depths
    = List.sort compare b.Sim.channel_depths);
  Alcotest.(check bool) "node stats identical" true
    (List.sort compare a.Sim.node_stats = List.sort compare b.Sim.node_stats)

(* ---- Chrome trace export ----------------------------------------------- *)

let test_chrome_trace_schema () =
  let compiled = compiled_pipeline () in
  let g = compiled.Pipeline.graph in
  let obs = Instrument.create ~graph:g () in
  let h = Health.create ~graph:g () in
  let trace, trace_observer = Trace.recorder () in
  let observer =
    Instrument.compose [ trace_observer; Instrument.observer obs ]
  in
  let result =
    Sim.run ~observer
      ~channel_observer:(Instrument.channel_observer obs)
      ~state_observer:(Health.state_observer h)
      ~graph:g
      ~mapping:(Pipeline.mapping_greedy compiled)
      ~machine:compiled.Pipeline.machine ()
  in
  Instrument.finalize obs ~result;
  Health.finalize h ~result ();
  let doc =
    Chrome_trace.of_run ~compile_passes:compiled.Pipeline.timings
      ~instrument:obs ~health:h ~graph:g ~trace ()
  in
  let parsed = parse_json (Obs_json.to_string doc) in
  let events =
    match field "traceEvents" parsed with
    | Some (JList evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  (* Timestamps must be monotone over the whole file. *)
  let ts_values =
    List.filter_map
      (fun e -> match field "ts" e with Some (JNum f) -> Some f | _ -> None)
      events
  in
  Alcotest.(check int) "every event has a ts" (List.length events)
    (List.length ts_values);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone timestamps" true (monotone ts_values);
  (* One named thread (track) per PE of the run, plus one stall track per
     PE the health layer observed. *)
  let thread_names =
    List.filter
      (fun e ->
        field "name" e = Some (JStr "thread_name")
        && field "ph" e = Some (JStr "M")
        && field "pid" e = Some (JNum 0.))
      events
  in
  Alcotest.(check int) "one thread_name per PE track (firings + stalls)"
    (2 * Array.length result.Sim.procs)
    (List.length thread_names);
  (* Firing slices land on PE tracks; at least one counter track exists. *)
  let xs =
    List.filter
      (fun e ->
        field "ph" e = Some (JStr "X")
        && field "pid" e = Some (JNum 0.)
        && field "cat" e = Some (JStr "firing"))
      events
  in
  Alcotest.(check bool) "has firing slices" true (xs <> []);
  List.iter
    (fun e ->
      match field "tid" e with
      | Some (JNum tid) ->
        Alcotest.(check bool) "tid is a PE" true
          (tid >= 0. && tid < float_of_int (Array.length result.Sim.procs))
      | _ -> Alcotest.fail "X event without tid")
    xs;
  (* Stall spans land on the 1000+p stall tracks with a culprit kernel. *)
  let stalls =
    List.filter (fun e -> field "cat" e = Some (JStr "stall")) events
  in
  Alcotest.(check bool) "has stall spans" true (stalls <> []);
  List.iter
    (fun e ->
      (match field "tid" e with
      | Some (JNum tid) ->
        Alcotest.(check bool) "stall tid on a stall track" true
          (tid >= 1000.
          && tid < 1000. +. float_of_int (Array.length result.Sim.procs))
      | _ -> Alcotest.fail "stall event without tid");
      match field "args" e with
      | Some (JObj args) ->
        Alcotest.(check bool) "stall names its kernel" true
          (List.mem_assoc "kernel" args)
      | _ -> Alcotest.fail "stall event without args")
    stalls;
  (* Every frame appears as an async begin/end pair. *)
  let frames_b =
    List.filter
      (fun e ->
        field "cat" e = Some (JStr "frame") && field "ph" e = Some (JStr "b"))
      events
  and frames_e =
    List.filter
      (fun e ->
        field "cat" e = Some (JStr "frame") && field "ph" e = Some (JStr "e"))
      events
  in
  let n_frames =
    List.fold_left (fun acc (_, fs) -> acc + List.length fs) 0 (Health.frames h)
  in
  Alcotest.(check bool) "frames were recorded" true (n_frames > 0);
  Alcotest.(check int) "one async begin per frame" n_frames
    (List.length frames_b);
  Alcotest.(check int) "one async end per frame" n_frames
    (List.length frames_e);
  let counters = List.filter (fun e -> field "ph" e = Some (JStr "C")) events in
  Alcotest.(check bool) "has counter events" true (counters <> []);
  (* Compile passes ride along on their own process. *)
  let passes =
    List.filter
      (fun e ->
        field "ph" e = Some (JStr "X") && field "pid" e = Some (JNum 1.))
      events
  in
  Alcotest.(check int) "one slice per compile pass"
    (List.length compiled.Pipeline.timings)
    (List.length passes)

let test_json_escaping_roundtrip () =
  let s = "a\"b\\c\nd\te\r\x01f" in
  match parse_json (Obs_json.to_string (Obs_json.Str s)) with
  | JStr back -> Alcotest.(check string) "string round-trips" s back
  | _ -> Alcotest.fail "expected string"

(* ---- compile pass timings ---------------------------------------------- *)

let test_pass_timings () =
  let compiled = compiled_pipeline () in
  let names = List.map (fun p -> p.Pipeline.pass) compiled.Pipeline.timings in
  Alcotest.(check (list string)) "passes in order"
    [
      "validate"; "analyze-pre"; "align"; "buffering"; "parallelize";
      "analyze-post"; "schedulability"; "map"; "place"; "schedule";
    ]
    names;
  List.iter
    (fun (p : Pipeline.pass_timing) ->
      Alcotest.(check bool) "wall time non-negative" true (p.Pipeline.wall_s >= 0.);
      Alcotest.(check bool) "node counts sane" true
        (p.Pipeline.nodes_after >= p.Pipeline.nodes_before))
    compiled.Pipeline.timings;
  let par =
    List.find (fun p -> p.Pipeline.pass = "parallelize") compiled.Pipeline.timings
  in
  Alcotest.(check bool) "parallelize grows the graph" true
    (par.Pipeline.nodes_after > par.Pipeline.nodes_before)

(* ---- metrics determinism ----------------------------------------------- *)

let test_metrics_sorted_deterministic () =
  let build order =
    let m = Metrics.create () in
    List.iter
      (fun n ->
        Metrics.incr m ("c." ^ n);
        Metrics.set m ("g." ^ n) 1.5;
        Metrics.observe m ("h." ^ n) 1e-3)
      order;
    m
  in
  let a = build [ "beta"; "alpha"; "gamma" ]
  and b = build [ "gamma"; "beta"; "alpha" ] in
  Alcotest.(check (list string))
    "names sorted regardless of registration order" (Metrics.names a)
    (Metrics.names b);
  Alcotest.(check bool) "names are sorted" true
    (let ns = Metrics.names a in
     List.sort compare ns = ns);
  Alcotest.(check string) "snapshots byte-identical"
    (Obs_json.to_string (Metrics.to_json a))
    (Obs_json.to_string (Metrics.to_json b));
  let pp m = Format.asprintf "%a" Metrics.pp m in
  Alcotest.(check string) "pp byte-identical" (pp a) (pp b)

(* ---- Trace.recorder and first_output_latency_s -------------------------- *)

let test_trace_recorder_and_latency () =
  let g, fwd = tiny () in
  let _, trace, result = instrumented_run g in
  let fwd_name = (Graph.node g fwd).Graph.name in
  (* First-output latency is the earliest first-data arrival across sinks. *)
  let fol = Option.get (Sim.first_output_latency_s result) in
  let expected =
    List.fold_left
      (fun acc (_, t) -> Float.min acc t)
      infinity result.Sim.sink_first_data
  in
  Alcotest.(check (float 0.)) "first-output latency = earliest sink data"
    expected fol;
  Alcotest.(check bool) "latency non-negative" true (fol >= 0.);
  (* The recorder saw exactly the forward kernel's 16 firings, in order. *)
  let firings = Trace.firings trace in
  Alcotest.(check int) "one firing per item" 16 (List.length firings);
  List.iter
    (fun (f : Trace.firing) ->
      Alcotest.(check string) "only the forward kernel fires" fwd_name
        f.Trace.kernel;
      Alcotest.(check bool) "service positive" true (f.Trace.service_s > 0.))
    firings;
  let rec monotone = function
    | (a : Trace.firing) :: (b :: _ as rest) ->
      a.Trace.at_s <= b.Trace.at_s && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "firings in time order" true (monotone firings);
  Alcotest.(check int) "all firings on PE 0" 16
    (List.length (Trace.firings_on trace ~proc:0));
  Alcotest.(check int) "no firings on PE 1" 0
    (List.length (Trace.firings_on trace ~proc:1));
  let total =
    List.fold_left (fun acc (f : Trace.firing) -> acc +. f.Trace.service_s)
      0. firings
  in
  (match Trace.busiest_kernel trace with
  | Some (name, s) ->
    Alcotest.(check string) "busiest kernel" fwd_name name;
    Alcotest.(check (float 1e-12)) "busiest kernel total service" total s
  | None -> Alcotest.fail "no busiest kernel");
  (match Trace.summary trace with
  | [ (name, fires, s) ] ->
    Alcotest.(check string) "summary kernel" fwd_name name;
    Alcotest.(check int) "summary fires" 16 fires;
    Alcotest.(check (float 1e-12)) "summary service" total s
  | l -> Alcotest.fail (Printf.sprintf "summary rows: %d" (List.length l)));
  let gantt = Trace.gantt trace in
  Alcotest.(check bool) "gantt shows busy slices" true
    (String.contains gantt '#')

(* ---- real-time health --------------------------------------------------- *)

(* The partition invariant: every on-chip kernel's state intervals tile
   [0, duration] exactly — contiguous, non-negative, starting at 0 and
   ending at the duration — and the busy total agrees with the
   simulator's own per-node accounting. *)
let check_partition tag g (h : Health.t) (result : Sim.result) =
  let tracks = Health.intervals h in
  Alcotest.(check bool) (tag ^ ": has kernel tracks") true (tracks <> []);
  List.iter
    (fun ((node : Graph.node), _proc, ivs) ->
      (match ivs with
      | [] -> Alcotest.fail (tag ^ ": kernel without intervals")
      | first :: _ ->
        Alcotest.(check (float 0.))
          (tag ^ ": first interval starts at 0")
          0. first.Health.iv_start);
      let rec contiguous = function
        | (a : Health.interval) :: (b :: _ as rest) ->
          Alcotest.(check (float 0.))
            (tag ^ ": intervals contiguous")
            a.Health.iv_end b.Health.iv_start;
          contiguous rest
        | [ (last : Health.interval) ] ->
          Alcotest.(check (float 0.))
            (tag ^ ": last interval ends at duration")
            result.Sim.duration_s last.Health.iv_end
        | [] -> ()
      in
      contiguous ivs;
      List.iter
        (fun (iv : Health.interval) ->
          Alcotest.(check bool)
            (tag ^ ": interval non-negative")
            true
            (iv.Health.iv_end >= iv.Health.iv_start))
        ivs;
      let bd = Option.get (Health.breakdown h node.Graph.id) in
      Alcotest.(check (float 1e-9))
        (tag ^ ": breakdown partitions the run")
        result.Sim.duration_s
        (bd.Health.busy_s +. bd.Health.blocked_input_s
        +. bd.Health.blocked_output_s +. bd.Health.idle_s);
      let ns = List.assoc node.Graph.id result.Sim.node_stats in
      Alcotest.(check (float 1e-9))
        (tag ^ ": busy agrees with node_stats")
        ns.Sim.node_busy_s bd.Health.busy_s)
    tracks;
  ignore g

let test_health_partition_suite () =
  List.iter
    (fun label ->
      List.iter
        (fun greedy ->
          let tag =
            Printf.sprintf "%s/%s" label (if greedy then "greedy" else "1:1")
          in
          let e = Apps.Suite.by_label label in
          let inst = e.Apps.Suite.build () in
          let compiled =
            Pipeline.compile ~machine:e.Apps.Suite.machine inst.App.graph
          in
          let g = compiled.Pipeline.graph in
          let h, result = health_run ~greedy g ~machine:e.Apps.Suite.machine in
          check_partition tag g h result)
        [ false; true ])
    Apps.Suite.labels

(* A graph whose bottleneck is analytically known: the Heavy kernel's
   service time (3000 cycles = 3 ms at 1 MHz) is ~10x the element period
   (8x8 @ 50 Hz = 312.5 us/pixel), so Heavy saturates, the
   Forward->Heavy channel fills, and Forward spends the run
   blocked-on-output against it. *)
let heavy_cycles = 3000

let bottleneck_fixture () =
  let frame = Size.v 8 8 in
  let frames = Image.Gen.frame_sequence ~seed:11 frame 2 in
  let heavy =
    let methods =
      [
        Method_spec.on_data ~cycles:heavy_cycles ~name:"run"
          ~inputs:[ "in" ] ~outputs:[ "out" ] ();
      ]
    in
    let run _m ~alloc:_ inputs = [ ("out", List.assoc "in" inputs) ] in
    Kernel.v ~class_name:"Heavy"
      ~inputs:[ Port.input "in" Window.pixel ]
      ~outputs:[ Port.output "out" Window.pixel ]
      ~methods
      ~make_behaviour:(fun () -> Behaviour.iteration_kernel ~methods ~run ())
      ()
  in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 50. })
      (Source.spec ~frame ~frames ())
  in
  let fwd = Graph.add g (Arith.forward ()) in
  let hv = Graph.add g heavy in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  Graph.connect g ~from:(src, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(hv, "in");
  Graph.connect g ~from:(hv, "out") ~into:(sink, "in");
  (g, fwd, hv, sink)

let test_bottleneck_known_answer () =
  let g, fwd, hv, _sink = bottleneck_fixture () in
  let h, result = health_run g ~machine:Machine.default in
  check_partition "heavy" g h result;
  let b = Option.get (Health.bottleneck h) in
  let fwd_name = (Graph.node g fwd).Graph.name in
  let hv_name = (Graph.node g hv).Graph.name in
  Alcotest.(check string) "most blocked kernel is Forward" fwd_name
    b.Health.b_kernel.Graph.name;
  Alcotest.(check bool) "blocked a dominant share of the run" true
    (b.Health.b_blocked_s > 0.5 *. result.Sim.duration_s);
  (* The binding channel is the Forward->Heavy edge; its other endpoint —
     the rate limiter the report should name — is Heavy. *)
  (match b.Health.b_chan with
  | Some c ->
    Alcotest.(check int) "binding channel leaves Forward" fwd
      c.Graph.src.Graph.node;
    Alcotest.(check int) "binding channel enters Heavy" hv
      c.Graph.dst.Graph.node
  | None -> Alcotest.fail "no binding channel attributed");
  Alcotest.(check string) "culprit is the Heavy kernel" hv_name
    (Option.get b.Health.b_culprit).Graph.name;
  (* Forward's blocked time is blocked-on-output, and Heavy saturates. *)
  let bd_fwd = Option.get (Health.breakdown h fwd) in
  Alcotest.(check bool) "Forward blocked on output, not input" true
    (bd_fwd.Health.blocked_output_s > bd_fwd.Health.blocked_input_s);
  let bd_hv = Option.get (Health.breakdown h hv) in
  Alcotest.(check bool) "Heavy is nearly saturated" true
    (bd_hv.Health.busy_s > 0.9 *. result.Sim.duration_s);
  (* The report prose names the culprit. *)
  let report = Format.asprintf "%a" Health.pp_bottleneck h in
  Alcotest.(check bool) "report names the rate limiter" true
    (let needle = "Likely rate limiter: " ^ hv_name in
     let nl = String.length needle and rl = String.length report in
     let rec scan i =
       i + nl <= rl && (String.sub report i nl = needle || scan (i + 1))
     in
     scan 0)

let test_health_frames_and_deadlines () =
  (* The overloaded fixture cannot keep up with 50 Hz: frame 1's
     end-of-frame arrives far past its deadline. *)
  let g, _, _, sink = bottleneck_fixture () in
  let h, result = health_run g ~machine:Machine.default in
  (* Frame births were tagged at the source, in frame order. *)
  (match result.Sim.source_frame_births with
  | [ (_, [ b0; b1 ]) ] ->
    Alcotest.(check (float 0.)) "frame 0 born at t=0" 0. b0;
    Alcotest.(check bool) "births in frame order" true (b1 > b0)
  | _ -> Alcotest.fail "expected one source with two frame births");
  (match Health.frames h with
  | [ (node, [ f0; f1 ]) ] ->
    Alcotest.(check int) "frames land on the sink" sink node.Graph.id;
    Alcotest.(check int) "frame indices" 0 f0.Health.f_index;
    Alcotest.(check int) "frame indices" 1 f1.Health.f_index;
    List.iter
      (fun (f : Health.frame) ->
        Alcotest.(check bool) "latency positive" true (f.Health.f_latency_s > 0.);
        Alcotest.(check (float 1e-12)) "latency = arrival - birth"
          (f.Health.f_arrival_s -. f.Health.f_birth_s)
          f.Health.f_latency_s)
      [ f0; f1 ];
    (* Deadlines anchor at the first arrival, so frame 0 holds and the
       late frame 1 misses. *)
    Alcotest.(check bool) "frame 0 meets its anchor deadline" false
      f0.Health.f_missed;
    Alcotest.(check bool) "frame 1 misses" true f1.Health.f_missed
  | _ -> Alcotest.fail "expected one sink with two frames");
  Alcotest.(check int) "one deadline miss total" 1 (Health.deadline_misses h);
  let m = Health.metrics h in
  Alcotest.(check int) "miss counter" 1 (Metrics.counter m "sim.deadline_misses");
  let name = (Graph.node g sink).Graph.name in
  Alcotest.(check int) "per-sink miss counter" 1
    (Metrics.counter m (Printf.sprintf "sink.%s.deadline_misses" name));
  let lat =
    Option.get
      (Metrics.histogram m (Printf.sprintf "sink.%s.frame_latency_s" name))
  in
  Alcotest.(check int) "one latency sample per frame" 2 lat.Metrics.h_count

let test_health_json_valid () =
  let compiled = compiled_pipeline () in
  let g = compiled.Pipeline.graph in
  let h, _ = health_run g ~machine:compiled.Pipeline.machine in
  let parsed = parse_json (Obs_json.to_string (Health.to_json h)) in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true
        (field key parsed <> None))
    [
      "duration_s"; "period_s"; "deadline_misses"; "kernels"; "sinks";
      "channels"; "bottleneck";
    ];
  (match field "kernels" parsed with
  | Some (JList ks) ->
    Alcotest.(check bool) "has kernels" true (ks <> []);
    let names =
      List.filter_map
        (fun k ->
          match field "name" k with Some (JStr s) -> Some s | _ -> None)
      ks
    in
    Alcotest.(check bool) "kernels sorted by name" true
      (List.sort compare names = names)
  | _ -> Alcotest.fail "kernels not a list");
  match field "bottleneck" parsed with
  | Some (JObj fields) ->
    Alcotest.(check bool) "bottleneck names a kernel" true
      (List.mem_assoc "kernel" fields)
  | _ -> Alcotest.fail "bottleneck not an object"

(* The quasi-static telemetry lands in the registry under stable keys
   and is deterministic across identical runs: the schedule artifact is
   a pure function of the program, and the engine's elision/reconcile
   counters are a pure function of the run. Runs are unobserved (no
   trace/channel/state observers), so quasi-static execution is active.
   Only the schedule pass's presence is asserted for its wall-clock
   gauge — timings themselves are not deterministic. *)
let test_static_metrics_deterministic () =
  let run () =
    let plan = compiled_pipeline () in
    let result = Sim.run_plan ~policy:Plan.One_to_one plan () in
    let obs = Instrument.create ~graph:plan.Pipeline.graph () in
    Instrument.finalize obs ~result;
    let m = Instrument.metrics obs in
    Instrument.record_compile m plan;
    ( ( Option.get (Metrics.gauge m "sim.static.regions"),
        Metrics.counter m "sim.static.fired",
        Metrics.counter m "sim.static.fallback_events",
        Metrics.counter m "sim.static.elided_events" ),
      Metrics.gauge m "compile.pass.schedule.wall_s",
      result )
  in
  let keys1, sched_wall1, res1 = run () in
  let keys2, _, res2 = run () in
  Alcotest.(check bool) "static telemetry keys identical across runs" true
    (keys1 = keys2);
  let regions, fired, fallback, elided = keys1 in
  Alcotest.(check (float 0.)) "regions gauge mirrors the result"
    (float_of_int res1.Sim.static_regions)
    regions;
  Alcotest.(check int) "fired counter mirrors the result"
    res1.Sim.static_fired fired;
  Alcotest.(check int) "no fallbacks on the image pipeline" 0 fallback;
  Alcotest.(check int) "elided counter mirrors the result"
    res1.Sim.static_elided_events elided;
  Alcotest.(check bool) "tables actually fired" true (fired > 0);
  Alcotest.(check bool) "wakes actually elided" true (elided > 0);
  Alcotest.(check int) "results identical across runs"
    res1.Sim.events_processed res2.Sim.events_processed;
  match sched_wall1 with
  | None -> Alcotest.fail "compile.pass.schedule.wall_s gauge missing"
  | Some w ->
    Alcotest.(check bool) "schedule pass wall gauge non-negative" true
      (w >= 0.)

let suite =
  [
    Alcotest.test_case "metrics: counters, gauges, histograms" `Quick
      test_metrics_basics;
    Alcotest.test_case "static telemetry: stable keys, deterministic" `Quick
      test_static_metrics_deterministic;
    Alcotest.test_case "metrics: kind clash fails loudly" `Quick
      test_metrics_kind_clash;
    Alcotest.test_case "metrics: JSON snapshot valid" `Quick
      test_metrics_json_valid;
    Alcotest.test_case "instrument: hand-computed counts (tiny graph)" `Quick
      test_tiny_counts;
    Alcotest.test_case "instrument: occupancy series monotone" `Quick
      test_tiny_series_monotone;
    Alcotest.test_case "instrument: sample limit drops, counts" `Quick
      test_sample_limit;
    Alcotest.test_case "observers do not perturb the simulation" `Quick
      test_differential_observer_free;
    Alcotest.test_case "chrome trace: schema, tracks, monotone ts" `Quick
      test_chrome_trace_schema;
    Alcotest.test_case "json: escaping round-trips" `Quick
      test_json_escaping_roundtrip;
    Alcotest.test_case "pipeline: pass timings recorded" `Quick
      test_pass_timings;
    Alcotest.test_case "metrics: snapshots deterministic across orders" `Quick
      test_metrics_sorted_deterministic;
    Alcotest.test_case "trace recorder + first-output latency" `Quick
      test_trace_recorder_and_latency;
    Alcotest.test_case "health: intervals partition [0,duration] (suite)"
      `Slow test_health_partition_suite;
    Alcotest.test_case "health: bottleneck known answer" `Quick
      test_bottleneck_known_answer;
    Alcotest.test_case "health: frame latency and deadline misses" `Quick
      test_health_frames_and_deadlines;
    Alcotest.test_case "health: JSON snapshot valid and sorted" `Quick
      test_health_json_valid;
  ]
