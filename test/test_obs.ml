(* Tests for the observability layer (lib/obs): the metrics registry, the
   instrumentation contract of docs/OBSERVABILITY.md, Chrome-trace export
   (valid JSON, monotone timestamps, one track per PE, counter tracks),
   compile-pass timings, and — crucially — that observers are passive: a
   run's result is identical with and without them. *)

open Block_parallel

(* ---- a tiny validating JSON reader ------------------------------------ *)
(* The repo deliberately has no JSON dependency; this reader exists so the
   tests can assert "python -m json.tool would accept this" in-process. *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos >= n then bad "eof" else s.[!pos] in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then bad (Printf.sprintf "expected %c" c);
    incr pos
  in
  let lit l v =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
    then begin
      pos := !pos + String.length l;
      v
    end
    else bad ("expected " ^ l)
  in
  let parse_string () =
    expect '"';
    let buf = Stdlib.Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (match peek () with
        | '"' -> Stdlib.Buffer.add_char buf '"'
        | '\\' -> Stdlib.Buffer.add_char buf '\\'
        | '/' -> Stdlib.Buffer.add_char buf '/'
        | 'b' -> Stdlib.Buffer.add_char buf '\b'
        | 'f' -> Stdlib.Buffer.add_char buf '\012'
        | 'n' -> Stdlib.Buffer.add_char buf '\n'
        | 'r' -> Stdlib.Buffer.add_char buf '\r'
        | 't' -> Stdlib.Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then bad "bad \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
            with _ -> bad "bad \\u escape"
          in
          pos := !pos + 4;
          (* Our writer only \u-escapes control characters, so a one-byte
             decode is enough for the round-trip check. *)
          if code < 0x80 then Stdlib.Buffer.add_char buf (Char.chr code)
          else Stdlib.Buffer.add_char buf '?'
        | _ -> bad "bad escape");
        incr pos;
        go ()
      | c when Char.code c < 0x20 -> bad "raw control char in string"
      | c ->
        Stdlib.Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Stdlib.Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> JNum f
    | None -> bad ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        JObj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            fields ((k, v) :: acc)
          | '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> bad "expected , or }"
        in
        JObj (fields [])
      end
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        JList []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            items (v :: acc)
          | ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> bad "expected , or ]"
        in
        JList (items [])
      end
    | '"' -> JStr (parse_string ())
    | 't' -> lit "true" (JBool true)
    | 'f' -> lit "false" (JBool false)
    | 'n' -> lit "null" JNull
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage";
  v

let field name = function
  | JObj fields -> List.assoc_opt name fields
  | _ -> None

(* ---- fixtures ---------------------------------------------------------- *)

(* Source -> Forward -> Sink on a 4x3 frame: every count below is
   hand-computable. One frame is 12 pixels + 3 end-of-line + 1 end-of-frame
   = 16 items; the forward kernel fires once per item (12 data fires + 4
   token forwards). *)
let tiny () =
  let frame = Size.v 4 3 in
  let frames = Image.Gen.frame_sequence ~seed:7 frame 1 in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 50. })
      (Source.spec ~frame ~frames ())
  in
  let fwd = Graph.add g (Arith.forward ()) in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  Graph.connect g ~from:(src, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(sink, "in");
  (g, fwd)

let instrumented_run ?sample_limit g =
  let obs = Instrument.create ?sample_limit ~graph:g () in
  let trace, trace_observer = Trace.recorder () in
  let observer ~time_s ~proc ~node ~method_name ~service_s =
    trace_observer ~time_s ~proc ~node ~method_name ~service_s;
    Instrument.observer obs ~time_s ~proc ~node ~method_name ~service_s
  in
  let result =
    Sim.run ~observer
      ~channel_observer:(Instrument.channel_observer obs)
      ~graph:g ~mapping:(Mapping.one_to_one g) ~machine:Machine.default ()
  in
  Instrument.finalize obs ~result;
  (obs, trace, result)

let compiled_pipeline () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:2 ()
  in
  Pipeline.compile ~machine:Machine.default inst.App.graph

(* ---- metrics registry -------------------------------------------------- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  Alcotest.(check int) "counter" 5 (Metrics.counter m "c");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter m "nope");
  Metrics.set m "g" 2.5;
  Metrics.set_max m "g" 1.0;
  Alcotest.(check (float 0.)) "set_max keeps high water" 2.5
    (Option.get (Metrics.gauge m "g"));
  Metrics.set_max m "g" 7.0;
  Alcotest.(check (float 0.)) "set_max raises" 7.0
    (Option.get (Metrics.gauge m "g"));
  Metrics.add m "acc" 1.5;
  Metrics.add m "acc" 1.5;
  Alcotest.(check (float 1e-12)) "add accumulates" 3.0
    (Option.get (Metrics.gauge m "acc"));
  Metrics.observe m "h" 1e-6;
  Metrics.observe m "h" 3e-6;
  let h = Option.get (Metrics.histogram m "h") in
  Alcotest.(check int) "hist count" 2 h.Metrics.h_count;
  Alcotest.(check (float 1e-18)) "hist sum" 4e-6 h.Metrics.h_sum;
  Alcotest.(check (float 1e-18)) "hist min" 1e-6 h.Metrics.h_min;
  Alcotest.(check (float 1e-18)) "hist max" 3e-6 h.Metrics.h_max;
  Alcotest.(check (float 1e-18)) "hist mean" 2e-6 h.Metrics.h_mean

let test_metrics_kind_clash () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "counter used as gauge"
    (Invalid_argument "Metrics: x is a counter, used as a gauge") (fun () ->
      Metrics.set m "x" 1.)

let test_metrics_json_valid () =
  let m = Metrics.create () in
  Metrics.incr m "weird \"name\"\n";
  Metrics.observe m "h" 0.5;
  Metrics.set m "g" 0.25;
  match parse_json (Obs_json.to_string (Metrics.to_json m)) with
  | JObj [ ("metrics", JList entries) ] ->
    Alcotest.(check int) "three entries" 3 (List.length entries);
    List.iter
      (fun e ->
        match (field "name" e, field "kind" e) with
        | Some (JStr _), Some (JStr k) ->
          Alcotest.(check bool) "known kind" true
            (List.mem k [ "counter"; "gauge"; "histogram" ])
        | _ -> Alcotest.fail "entry missing name/kind")
      entries
  | _ -> Alcotest.fail "unexpected metrics JSON shape"

(* ---- the instrumentation contract on a hand-computed graph ------------- *)

let test_tiny_counts () =
  let g, fwd = tiny () in
  let obs, _, result = instrumented_run g in
  let m = Instrument.metrics obs in
  let fwd_name = (Graph.node g fwd).Graph.name in
  (* 12 pixels + 3 EOL + 1 EOF, one fire per item. *)
  Alcotest.(check int) "forward fires" 16
    (Metrics.counter m (Printf.sprintf "kernel.%s.fires" fwd_name));
  let svc =
    Option.get
      (Metrics.histogram m (Printf.sprintf "kernel.%s.service_s" fwd_name))
  in
  Alcotest.(check int) "one service sample per fire" 16 svc.Metrics.h_count;
  (* Both channels carry the same 16 items end to end. *)
  List.iter
    (fun (c : Graph.channel) ->
      let id = c.Graph.chan_id in
      Alcotest.(check int)
        (Printf.sprintf "chan %d pushes" id)
        16
        (Metrics.counter m (Printf.sprintf "chan.%d.pushes" id));
      Alcotest.(check int)
        (Printf.sprintf "chan %d pops" id)
        16
        (Metrics.counter m (Printf.sprintf "chan.%d.pops" id)))
    (Graph.channels g);
  (* Cross-check against the simulator's own accounting. *)
  List.iter
    (fun (id, (ns : Sim.node_stats)) ->
      let name = (Graph.node g id).Graph.name in
      if Mapping.is_on_chip (Graph.node g id) then
        Alcotest.(check int)
          (Printf.sprintf "%s fires agree" name)
          ns.Sim.node_fires
          (Metrics.counter m (Printf.sprintf "kernel.%s.fires" name)))
    result.Sim.node_stats;
  (* PE accounting: one on-chip kernel on PE 0. *)
  Alcotest.(check int) "pe fires" 16 (Metrics.counter m "pe.0.fires");
  let busy = Option.get (Metrics.gauge m "pe.0.busy_s") in
  let idle = Option.get (Metrics.gauge m "pe.0.idle_s") in
  Alcotest.(check (float 1e-9)) "busy+idle = duration"
    result.Sim.duration_s (busy +. idle);
  Alcotest.(check (float 1e-9)) "util = busy/duration"
    (busy /. result.Sim.duration_s)
    (Option.get (Metrics.gauge m "pe.0.util"));
  Alcotest.(check (float 0.)) "no stalls" 0.
    (float_of_int (Metrics.counter m "sim.input_stalls"));
  Alcotest.(check (float 0.)) "nothing leftover" 0.
    (float_of_int (Metrics.counter m "sim.leftover_items"))

let test_tiny_series_monotone () =
  let g, _ = tiny () in
  let obs, _, _ = instrumented_run g in
  let series = Instrument.channel_series obs in
  Alcotest.(check int) "two channels" 2 (List.length series);
  List.iter
    (fun (id, samples) ->
      Alcotest.(check bool)
        (Printf.sprintf "chan %d has samples" id)
        true (samples <> []);
      (* 16 pushes + 16 pops. *)
      Alcotest.(check int)
        (Printf.sprintf "chan %d sample count" id)
        32 (List.length samples);
      let rec monotone = function
        | (t0, _) :: ((t1, _) :: _ as rest) ->
          t0 <= t1 +. 1e-15 && monotone rest
        | _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "chan %d series monotone" id)
        true (monotone samples);
      List.iter
        (fun (_, depth) ->
          Alcotest.(check bool) "depth in range" true (depth >= 0))
        samples)
    series

let test_sample_limit () =
  let g, _ = tiny () in
  let obs, _, _ = instrumented_run ~sample_limit:5 g in
  List.iter
    (fun (id, samples) ->
      Alcotest.(check int)
        (Printf.sprintf "chan %d capped" id)
        5 (List.length samples);
      Alcotest.(check int)
        (Printf.sprintf "chan %d drop count" id)
        27
        (Metrics.counter (Instrument.metrics obs)
           (Printf.sprintf "chan.%d.samples_dropped" id)))
    (Instrument.channel_series obs)

(* ---- observers are passive --------------------------------------------- *)

let test_differential_observer_free () =
  let compiled = compiled_pipeline () in
  let g = compiled.Pipeline.graph in
  let machine = compiled.Pipeline.machine in
  let run_with_obs () =
    let mapping = Pipeline.mapping_greedy compiled in
    let obs = Instrument.create ~graph:g () in
    let result =
      Sim.run
        ~observer:(Instrument.observer obs)
        ~channel_observer:(Instrument.channel_observer obs)
        ~graph:g ~mapping ~machine ()
    in
    Instrument.finalize obs ~result;
    result
  in
  let run_bare () =
    let mapping = Pipeline.mapping_greedy compiled in
    Sim.run ~graph:g ~mapping ~machine ()
  in
  let a = run_with_obs () and b = run_bare () in
  Alcotest.(check (float 0.)) "duration identical" b.Sim.duration_s
    a.Sim.duration_s;
  Alcotest.(check int) "stalls identical" b.Sim.input_stalls a.Sim.input_stalls;
  Alcotest.(check int) "late identical" b.Sim.late_emissions a.Sim.late_emissions;
  Alcotest.(check int) "leftover identical" b.Sim.leftover_items
    a.Sim.leftover_items;
  Alcotest.(check int) "PE count identical" (Array.length b.Sim.procs)
    (Array.length a.Sim.procs);
  Array.iteri
    (fun i (pb : Sim.proc_stats) ->
      let pa = a.Sim.procs.(i) in
      Alcotest.(check int) "fires identical" pb.Sim.fires pa.Sim.fires;
      Alcotest.(check (float 0.)) "run_s identical" pb.Sim.run_s pa.Sim.run_s;
      Alcotest.(check (float 0.)) "read_s identical" pb.Sim.read_s pa.Sim.read_s;
      Alcotest.(check (float 0.)) "write_s identical" pb.Sim.write_s
        pa.Sim.write_s)
    b.Sim.procs;
  Alcotest.(check bool) "depths identical" true
    (List.sort compare a.Sim.channel_depths
    = List.sort compare b.Sim.channel_depths);
  Alcotest.(check bool) "node stats identical" true
    (List.sort compare a.Sim.node_stats = List.sort compare b.Sim.node_stats)

(* ---- Chrome trace export ----------------------------------------------- *)

let test_chrome_trace_schema () =
  let compiled = compiled_pipeline () in
  let g = compiled.Pipeline.graph in
  let obs = Instrument.create ~graph:g () in
  let trace, trace_observer = Trace.recorder () in
  let observer ~time_s ~proc ~node ~method_name ~service_s =
    trace_observer ~time_s ~proc ~node ~method_name ~service_s;
    Instrument.observer obs ~time_s ~proc ~node ~method_name ~service_s
  in
  let result =
    Sim.run ~observer
      ~channel_observer:(Instrument.channel_observer obs)
      ~graph:g
      ~mapping:(Pipeline.mapping_greedy compiled)
      ~machine:compiled.Pipeline.machine ()
  in
  Instrument.finalize obs ~result;
  let doc =
    Chrome_trace.of_run ~compile_passes:compiled.Pipeline.passes
      ~instrument:obs ~graph:g ~trace ()
  in
  let parsed = parse_json (Obs_json.to_string doc) in
  let events =
    match field "traceEvents" parsed with
    | Some (JList evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  (* Timestamps must be monotone over the whole file. *)
  let ts_values =
    List.filter_map
      (fun e -> match field "ts" e with Some (JNum f) -> Some f | _ -> None)
      events
  in
  Alcotest.(check int) "every event has a ts" (List.length events)
    (List.length ts_values);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone timestamps" true (monotone ts_values);
  (* One named thread (track) per PE of the run. *)
  let thread_names =
    List.filter
      (fun e ->
        field "name" e = Some (JStr "thread_name")
        && field "ph" e = Some (JStr "M")
        && field "pid" e = Some (JNum 0.))
      events
  in
  Alcotest.(check int) "one thread_name per PE"
    (Array.length result.Sim.procs)
    (List.length thread_names);
  (* Firing slices land on PE tracks; at least one counter track exists. *)
  let xs =
    List.filter
      (fun e ->
        field "ph" e = Some (JStr "X") && field "pid" e = Some (JNum 0.))
      events
  in
  Alcotest.(check bool) "has firing slices" true (xs <> []);
  List.iter
    (fun e ->
      match field "tid" e with
      | Some (JNum tid) ->
        Alcotest.(check bool) "tid is a PE" true
          (tid >= 0. && tid < float_of_int (Array.length result.Sim.procs))
      | _ -> Alcotest.fail "X event without tid")
    xs;
  let counters = List.filter (fun e -> field "ph" e = Some (JStr "C")) events in
  Alcotest.(check bool) "has counter events" true (counters <> []);
  (* Compile passes ride along on their own process. *)
  let passes =
    List.filter
      (fun e ->
        field "ph" e = Some (JStr "X") && field "pid" e = Some (JNum 1.))
      events
  in
  Alcotest.(check int) "one slice per compile pass"
    (List.length compiled.Pipeline.passes)
    (List.length passes)

let test_json_escaping_roundtrip () =
  let s = "a\"b\\c\nd\te\r\x01f" in
  match parse_json (Obs_json.to_string (Obs_json.Str s)) with
  | JStr back -> Alcotest.(check string) "string round-trips" s back
  | _ -> Alcotest.fail "expected string"

(* ---- compile pass timings ---------------------------------------------- *)

let test_pass_timings () =
  let compiled = compiled_pipeline () in
  let names = List.map (fun p -> p.Pipeline.pass) compiled.Pipeline.passes in
  Alcotest.(check (list string)) "passes in order"
    [
      "validate"; "analyze-pre"; "align"; "buffering"; "parallelize";
      "analyze-post"; "check";
    ]
    names;
  List.iter
    (fun (p : Pipeline.pass_timing) ->
      Alcotest.(check bool) "wall time non-negative" true (p.Pipeline.wall_s >= 0.);
      Alcotest.(check bool) "node counts sane" true
        (p.Pipeline.nodes_after >= p.Pipeline.nodes_before))
    compiled.Pipeline.passes;
  let par =
    List.find (fun p -> p.Pipeline.pass = "parallelize") compiled.Pipeline.passes
  in
  Alcotest.(check bool) "parallelize grows the graph" true
    (par.Pipeline.nodes_after > par.Pipeline.nodes_before)

let suite =
  [
    Alcotest.test_case "metrics: counters, gauges, histograms" `Quick
      test_metrics_basics;
    Alcotest.test_case "metrics: kind clash fails loudly" `Quick
      test_metrics_kind_clash;
    Alcotest.test_case "metrics: JSON snapshot valid" `Quick
      test_metrics_json_valid;
    Alcotest.test_case "instrument: hand-computed counts (tiny graph)" `Quick
      test_tiny_counts;
    Alcotest.test_case "instrument: occupancy series monotone" `Quick
      test_tiny_series_monotone;
    Alcotest.test_case "instrument: sample limit drops, counts" `Quick
      test_sample_limit;
    Alcotest.test_case "observers do not perturb the simulation" `Quick
      test_differential_observer_free;
    Alcotest.test_case "chrome trace: schema, tracks, monotone ts" `Quick
      test_chrome_trace_schema;
    Alcotest.test_case "json: escaping round-trips" `Quick
      test_json_escaping_roundtrip;
    Alcotest.test_case "pipeline: pass timings recorded" `Quick
      test_pass_timings;
  ]
