(* The staged pass manager and the Plan artifact.

   The tentpole guarantees pinned here:
   - [Plan.run_plan] is bit-exact against the pre-plan
     [Pipeline.simulate] path over the whole benchmark suite, under both
     mapping policies (the plan's stored mappings ARE the ad-hoc ones);
   - every compile yields a complete plan: both mappings realized (or a
     recorded greedy overflow), a placement per realized mapping, a
     schedulability verdict, timings for all ten passes in order;
   - diagnostics are deterministic: two compiles of the same program
     render identical diagnostic lists;
   - a failing pass leaves evidence behind: the error names the pass and
     keeps its class, the caller's diagnostic buffer holds an error
     entry, and the pass manager records the partial timing of the very
     pass that raised;
   - the pass clock is monotonic. *)

open Block_parallel
open Harness

let pass_names =
  [
    "validate"; "analyze-pre"; "align"; "buffering"; "parallelize";
    "analyze-post"; "schedulability"; "map"; "place"; "schedule";
  ]

(* Same signature as the engine-equivalence differential: every
   observable of a run, compared with exact floats. *)
let result_signature (r : Sim.result) =
  let assoc l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  ( Array.to_list
      (Array.map
         (fun (p : Sim.proc_stats) ->
           (p.Sim.run_s, p.Sim.read_s, p.Sim.write_s, p.Sim.fires))
         r.Sim.procs),
    (r.Sim.input_stalls, r.Sim.late_emissions, r.Sim.max_input_lateness_s),
    assoc r.Sim.sink_eofs,
    assoc r.Sim.sink_first_data,
    List.sort compare
      (List.map
         (fun (id, (ns : Sim.node_stats)) ->
           (id, ns.Sim.node_fires, ns.Sim.node_busy_s))
         r.Sim.node_stats),
    List.sort compare r.Sim.channel_depths,
    (r.Sim.leftover_items, r.Sim.timed_out) )

(* Each execution path gets its own freshly built instance: behaviour
   state and sink collectors are per-instance, and the two paths must
   not share a mutated graph. *)
let compile_suite_entry label =
  let e = Apps.Suite.by_label label in
  let inst = e.Apps.Suite.build () in
  (inst, Pipeline.compile ~machine:e.Apps.Suite.machine inst.App.graph)

let test_plan_vs_legacy_differential () =
  List.iter
    (fun label ->
      List.iter
        (fun policy ->
          let tag =
            Printf.sprintf "%s/%s" label (Plan.policy_name policy)
          in
          let _, legacy_compiled = compile_suite_entry label in
          let legacy =
            Pipeline.simulate legacy_compiled
              ~greedy:(policy = Plan.Greedy)
          in
          let _, plan = compile_suite_entry label in
          (* run_plan defaults to quasi-static execution, so this also
             pins the static engine to the fully event-driven legacy path
             — event counts included, since elided wakes count as
             processed. test_schedule.ml holds static against dynamic
             field by field. *)
          let fresh = Sim.run_plan ~policy plan () in
          Alcotest.(check (float 0.))
            (tag ^ ": duration bit-exact")
            legacy.Sim.duration_s fresh.Sim.duration_s;
          Alcotest.(check int)
            (tag ^ ": events processed")
            legacy.Sim.events_processed fresh.Sim.events_processed;
          Alcotest.(check bool)
            (tag ^ ": full result signature")
            true
            (result_signature legacy = result_signature fresh))
        [ Plan.One_to_one; Plan.Greedy ])
    Apps.Suite.labels

let test_plan_completeness () =
  List.iter
    (fun label ->
      let _, plan = compile_suite_entry label in
      Alcotest.(check (list string))
        (label ^ ": all passes timed, in order")
        pass_names
        (List.map (fun (p : Pipeline.pass_timing) -> p.Pipeline.pass)
           plan.Pipeline.timings);
      Alcotest.(check bool)
        (label ^ ": schedulability covers the graph")
        true
        (plan.Pipeline.schedulability.Schedulability.nodes <> []);
      let check_mapped policy =
        let m = Plan.mapped plan ~policy in
        let pes = List.length m.Plan.groups in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s mapping non-empty" label
             (Plan.policy_name policy))
          true (pes > 0);
        Alcotest.(check int)
          (Printf.sprintf "%s: %s mapping covers its groups" label
             (Plan.policy_name policy))
          pes
          (Mapping.processors m.Plan.mapping);
        let side = m.Plan.placement.Placement.mesh_side in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s placement mesh holds the PEs" label
             (Plan.policy_name policy))
          true
          (side > 0 && side * side >= pes)
      in
      check_mapped Plan.One_to_one;
      (* Every suite machine fits its greedy mapping. *)
      check_mapped Plan.Greedy;
      Alcotest.(check bool)
        (label ^ ": greedy grouping recorded")
        true
        (plan.Pipeline.greedy_groups <> []);
      Alcotest.(check (list string))
        (label ^ ": no error diagnostics on a successful compile")
        []
        (List.map Diag.to_string (Plan.errors plan)))
    Apps.Suite.labels

let test_diagnostics_deterministic () =
  List.iter
    (fun label ->
      let render plan =
        List.map Diag.to_string plan.Pipeline.diagnostics
      in
      let _, a = compile_suite_entry label in
      let _, b = compile_suite_entry label in
      Alcotest.(check bool)
        (label ^ ": at least one diagnostic (mapping summary)")
        true
        (render a <> []);
      Alcotest.(check (list string))
        (label ^ ": diagnostic lists identical across compiles")
        (render a) (render b))
    Apps.Suite.labels

(* An undecoupled feedback loop: graph validation rejects the cycle, so
   compile dies inside the very first pass. *)
let undecoupled_loop () =
  let g = Graph.create () in
  let frame = Size.v 4 4 in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 10. })
      (Source.spec ~frame ~frames:[] ())
  in
  let combine = Graph.add g (Feedback.loop_combine ( +. )) in
  let fwd = Graph.add g (Arith.forward ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(combine, "in0");
  Graph.connect g ~from:(combine, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(combine, "in1");
  Graph.connect g ~from:(combine, "out") ~into:(sink, "in");
  g

let test_failing_pass_evidence () =
  let diags = Diag.buffer () in
  (* The class survives the wrapping... *)
  expect_error (Err.Graph_malformed "") (fun () ->
      ignore (Pipeline.compile ~diags ~machine:Machine.default
                (undecoupled_loop ())));
  (* ...the message names the pass... *)
  (match
     Err.guard (fun () ->
         ignore (Pipeline.compile ~machine:Machine.default
                   (undecoupled_loop ())))
   with
  | Ok _ -> Alcotest.fail "expected the undecoupled loop to be rejected"
  | Error e ->
    Alcotest.(check bool)
      "error message names the failing pass" true
      (contains (Err.to_string e) "pass validate:"));
  (* ...and the caller's buffer holds the error diagnostic. *)
  match Diag.errors (Diag.list diags) with
  | [] -> Alcotest.fail "no error diagnostic accumulated"
  | d :: _ ->
    Alcotest.(check string) "diagnostic carries pass provenance"
      "validate" d.Diag.pass

(* Satellite 1, pinned at the pass-manager level where the timings ref
   is caller-visible: a raising pass still records its partial timing. *)
let test_failing_pass_partial_timing () =
  let g = (Apps.Suite.by_label "1").Apps.Suite.build () in
  let graph = g.App.graph in
  let diags = Diag.buffer () in
  let timings = ref [] in
  let boom = Pass.v "boom" (fun _ -> Err.invalidf "deliberate failure") in
  let fine = Pass.v "fine" (fun _ -> ()) in
  (match
     Err.guard (fun () ->
         Pass.run_all ~graph:(fun () -> graph) ~diags ~timings ()
           [ fine; boom; fine ])
   with
  | Ok () -> Alcotest.fail "expected the boom pass to fail"
  | Error e ->
    Alcotest.check err_kind "class preserved through the barrier"
      (Err.Invalid_parameterization "") e;
    Alcotest.(check bool) "wrapped with the pass name" true
      (contains (Err.to_string e) "pass boom:"));
  Alcotest.(check (list string))
    "partial timings include the failing pass, nothing after it"
    [ "fine"; "boom" ]
    (List.map (fun (t : Pass.timing) -> t.Pass.pass) !timings);
  List.iter
    (fun (t : Pass.timing) ->
      Alcotest.(check bool)
        (t.Pass.pass ^ ": wall time non-negative")
        true (t.Pass.wall_s >= 0.))
    !timings;
  match Diag.list diags with
  | [ d ] ->
    Alcotest.(check string) "one error diagnostic, from boom" "boom"
      d.Diag.pass;
    Alcotest.(check bool) "error severity" true
      (d.Diag.severity = Diag.Error)
  | ds ->
    Alcotest.failf "expected exactly one diagnostic, got %d"
      (List.length ds)

let test_invariant_failure_names_both () =
  let diags = Diag.buffer () in
  let timings = ref [] in
  let bad =
    Pass.v
      ~invariants:[ ("self-check", fun _ -> Err.graphf "broken invariant") ]
      "shaky"
      (fun _ -> ())
  in
  (match
     Err.guard (fun () ->
         Pass.run_all
           ~graph:(fun () -> Graph.create ())
           ~diags ~timings () [ bad ])
   with
  | Ok () -> Alcotest.fail "expected the invariant to fail"
  | Error e ->
    let s = Err.to_string e in
    Alcotest.(check bool) "names pass and invariant" true
      (contains s "pass shaky/self-check:"));
  Alcotest.(check (list string))
    "invariant time lands in the pass's timing" [ "shaky" ]
    (List.map (fun (t : Pass.timing) -> t.Pass.pass) !timings)

let test_wrap_err_preserves_class () =
  List.iter
    (fun e ->
      let w = Pass.wrap_err ~pass:"p" e in
      Alcotest.check err_kind "same constructor" e w;
      Alcotest.(check bool) "prefixed" true
        (contains (Err.to_string w) "pass p:"))
    [
      Err.Invalid_parameterization "x";
      Err.Graph_malformed "x";
      Err.Rate_mismatch "x";
      Err.Alignment_error "x";
      Err.Resource_exhausted "x";
      Err.Not_schedulable "x";
      Err.Unsupported "x";
    ]

let test_after_pass_hook () =
  let seen = ref [] in
  let inst = (Apps.Suite.by_label "1").Apps.Suite.build () in
  let _ =
    Pipeline.compile ~machine:Machine.default
      ~after_pass:(fun ~pass g ->
        seen := (pass, Graph.size g) :: !seen)
      inst.App.graph
  in
  Alcotest.(check (list string))
    "hook fires once per pass, in order" pass_names
    (List.rev_map fst !seen);
  (* The hook sees the graph as each barrier leaves it: sizes are
     non-decreasing through the elaborating passes. *)
  let sizes = List.rev_map snd !seen in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "graph only grows at the barriers" true
    (nondecreasing sizes)

let test_greedy_overflow_is_recorded_not_raised () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:1 ()
  in
  let machine = Machine.v ~max_pes:2 Machine.default.Machine.pe in
  (* Compilation itself succeeds... *)
  let plan = Pipeline.compile ~machine inst.App.graph in
  (* ...the 1:1 side is still fully realized... *)
  Alcotest.(check bool) "1:1 mapping present" true
    (List.length plan.Pipeline.one_to_one.Plan.groups > 0);
  (* ...the grouping is recorded even though it overflows... *)
  Alcotest.(check bool) "greedy grouping recorded" true
    (Plan.processors_needed plan ~policy:Plan.Greedy
     > machine.Machine.max_pes);
  (* ...reading the greedy mapping raises the recorded error... *)
  expect_error (Err.Resource_exhausted "") (fun () ->
      ignore (Plan.mapped plan ~policy:Plan.Greedy));
  (* ...and a warning diagnostic from the map pass tells the story. *)
  let warnings =
    List.filter
      (fun (d : Diag.t) ->
        d.Diag.severity = Diag.Warning && d.Diag.pass = "map")
      plan.Pipeline.diagnostics
  in
  Alcotest.(check bool) "warning diagnostic from the map pass" true
    (warnings <> [])

let test_run_plan_with_placement () =
  let _, plan = compile_suite_entry "1" in
  let base = Sim.run_plan ~policy:Plan.One_to_one plan () in
  let _, plan2 = compile_suite_entry "1" in
  let placed =
    Sim.run_plan ~with_placement:true ~policy:Plan.One_to_one plan2 ()
  in
  (* The NoC model only ever adds write cycles. *)
  Alcotest.(check bool) "placement never speeds the run" true
    (placed.Sim.duration_s >= base.Sim.duration_s);
  Alcotest.(check bool) "placed run completes" true
    (not placed.Sim.timed_out)

let test_clock_monotonic () =
  let prev = ref (Clock.now_s ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_s () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done;
  Alcotest.(check bool) "elapsed_s clamps negative intervals" true
    (Clock.elapsed_s ~since:(Clock.now_s () +. 60.) = 0.)

let test_explain_renders () =
  let _, plan = compile_suite_entry "1" in
  let s = Format.asprintf "@[<v>%a@]" Plan.pp_explain plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("explain mentions " ^ needle) true
        (contains s needle))
    ([ "compile passes:"; "schedulability:"; "mappings:"; "1:1"; "greedy" ]
    @ pass_names)

let suite =
  [
    Alcotest.test_case "plan vs legacy path, whole suite, both policies"
      `Slow test_plan_vs_legacy_differential;
    Alcotest.test_case "every suite plan is complete" `Slow
      test_plan_completeness;
    Alcotest.test_case "diagnostics order is deterministic" `Slow
      test_diagnostics_deterministic;
    Alcotest.test_case "failing pass: class, name, diagnostic" `Quick
      test_failing_pass_evidence;
    Alcotest.test_case "failing pass: partial timing recorded" `Quick
      test_failing_pass_partial_timing;
    Alcotest.test_case "invariant failure names pass and invariant" `Quick
      test_invariant_failure_names_both;
    Alcotest.test_case "wrap_err preserves the error class" `Quick
      test_wrap_err_preserves_class;
    Alcotest.test_case "after_pass hook order and coverage" `Quick
      test_after_pass_hook;
    Alcotest.test_case "greedy overflow recorded, not raised" `Quick
      test_greedy_overflow_is_recorded_not_raised;
    Alcotest.test_case "run_plan can apply the placement" `Quick
      test_run_plan_with_placement;
    Alcotest.test_case "pass clock is monotonic" `Quick test_clock_monotonic;
    Alcotest.test_case "--explain rendering covers the plan" `Quick
      test_explain_renders;
  ]
