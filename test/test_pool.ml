(* Tests for the zero-allocation data plane: the chunk pool's reuse and
   accounting contract, bit-exactness of the in-place [_into] image ops
   against their allocating counterparts, and GC-level sanity of the
   pooled simulator (docs/PERFORMANCE.md §"The data plane"). *)

open Block_parallel
open Harness

(* ---- pool contract ----------------------------------------------------- *)

let test_reuse_round_trip () =
  let p = Pool.create () in
  let s = Size.v 4 3 in
  let a = Pool.acquire p s in
  Image.set a ~x:2 ~y:1 42.;
  Pool.release p a;
  let b = Pool.acquire p s in
  Alcotest.(check bool) "same physical buffer" true (a == b);
  Alcotest.(check (float 0.)) "recycled buffer zeroed" 0.
    (Image.get b ~x:2 ~y:1);
  (* A different extent must not be served from that free list. *)
  let c = Pool.acquire p (Size.v 3 4) in
  Alcotest.(check bool) "extent keyed" false (b == c);
  let st = Pool.stats p in
  Alcotest.(check int) "hits" 1 st.Pool.hits;
  Alcotest.(check int) "misses" 2 st.Pool.misses;
  Alcotest.(check int) "releases" 1 st.Pool.releases;
  Alcotest.(check int) "live" 2 st.Pool.live

let test_no_live_leaks_check () =
  let p = Pool.create () in
  let a = Pool.acquire p (Size.v 2 2) in
  (try
     Pool.check_no_live_leaks p;
     Alcotest.fail "expected a live-leak failure"
   with Invalid_argument _ -> ());
  Pool.release p a;
  Pool.check_no_live_leaks p

(* Chunks that travel through a channel ring and come back out can be
   released and recycled: the ring's slot clearing must not retain (or
   corrupt) a pooled buffer. *)
let test_ring_round_trip () =
  let p = Pool.create () in
  let s = Size.v 3 3 in
  let dummy = Image.create Size.one in
  let ring = Bp_sim.Ring.create ~capacity:4 ~dummy in
  for i = 0 to 7 do
    let img = Pool.acquire p s in
    Image.set img ~x:1 ~y:1 (float_of_int i);
    Bp_sim.Ring.push ring img;
    let out = Bp_sim.Ring.pop ring in
    Alcotest.(check bool) "ring preserves identity" true (img == out);
    Alcotest.(check (float 0.)) "payload intact" (float_of_int i)
      (Image.get out ~x:1 ~y:1);
    Pool.release p out
  done;
  Pool.check_no_live_leaks p;
  let st = Pool.stats p in
  Alcotest.(check int) "one physical buffer served all rounds" 1
    st.Pool.misses

(* ---- in-place ops: bit-exact vs the allocating forms ------------------- *)

let gen_image ?(min_dim = 1) ?(max_dim = 12) () =
  QCheck2.Gen.(
    map
      (fun ((w, h), seed) ->
        Image.Gen.noise (Prng.create seed) (Size.v w h) 100.)
      (pair (pair (int_range min_dim max_dim) (int_range min_dim max_dim)) int))

let exact = Image.equal ~eps:0.

let prop_convolve_into =
  qtest "convolve_into = convolve"
    QCheck2.Gen.(
      pair (gen_image ~min_dim:3 ()) (pair (int_range 1 3) (int_range 1 3)))
    (fun (img, (kw, kh)) ->
      let kernel = Image.Gen.ramp (Size.v kw kh) in
      let want = Image_ops.convolve img ~kernel in
      let dst = Image.create (Image.size want) in
      Image_ops.convolve_into img ~kernel ~dst;
      exact want dst)

let prop_median_into =
  qtest "median_into = median (with and without scratch)"
    QCheck2.Gen.(
      pair (gen_image ~min_dim:3 ()) (pair (int_range 1 3) (int_range 1 3)))
    (fun (img, (w, h)) ->
      let want = Image_ops.median img ~w ~h in
      let dst = Image.create (Image.size want) in
      Image_ops.median_into img ~w ~h ~dst;
      let dst2 = Image.create (Image.size want) in
      Image_ops.median_into ~scratch:(Array.make (w * h) 0.) img ~w ~h
        ~dst:dst2;
      exact want dst && exact want dst2)

let prop_subtract_into =
  qtest "subtract_into = subtract"
    QCheck2.Gen.(pair (gen_image ()) int)
    (fun (a, seed) ->
      let b = Image.Gen.noise (Prng.create seed) (Image.size a) 50. in
      let want = Image_ops.subtract a b in
      let dst = Image.create (Image.size a) in
      Image_ops.subtract_into a b ~dst;
      exact want dst)

let prop_downsample_into =
  qtest "downsample_into = downsample"
    QCheck2.Gen.(
      pair
        (gen_image ~min_dim:3 ())
        (pair (int_range 1 3) (int_range 1 3)))
    (fun (img, (fx, fy)) ->
      let want = Image_ops.downsample img ~fx ~fy in
      let dst = Image.create (Image_ops.downsample_extent img ~fx ~fy) in
      Image_ops.downsample_into img ~fx ~fy ~dst;
      exact want dst)

(* ---- GC sanity --------------------------------------------------------- *)

let minor_words_of f =
  let g0 = Metrics.gc_snapshot () in
  f ();
  let g1 = Metrics.gc_snapshot () in
  g1.Metrics.gc_minor_words -. g0.Metrics.gc_minor_words

(* The data plane itself is where the ≥2× contract is enforced: a warm
   acquire/release cycle must allocate far less than a fresh Image.create
   of the same extent. (At the whole-simulator level the engine's fixed
   per-event overhead dilutes this ratio — see docs/PERFORMANCE.md.) *)
let test_pool_beats_fresh_allocation () =
  let s = Size.v 32 32 in
  let iters = 2_000 in
  let p = Pool.create () in
  let warm = Pool.acquire p s in
  Pool.release p warm;
  let pooled =
    minor_words_of (fun () ->
        for _ = 1 to iters do
          let img = Pool.acquire p s in
          Pool.release p img
        done)
  in
  let sink = ref (Image.create Size.one) in
  let fresh =
    minor_words_of (fun () ->
        for _ = 1 to iters do
          sink := Image.create s
        done)
  in
  if not (fresh >= 2. *. pooled) then
    Alcotest.failf
      "pooled data plane not >=2x cheaper: pooled %.0f vs fresh %.0f minor \
       words"
      pooled fresh

(* The pooled engine must stay within a hard allocation budget per event
   on the flagship fixture: ~60 words/event as of this writing, with
   headroom for instruction-set noise. A regression that reintroduces
   per-event boxing or closures blows well past this. *)
let test_sim_allocation_budget () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 48 36) ~rate:(Rate.hz 20.)
      ~n_frames:2 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let mapping = Pipeline.mapping_one_to_one compiled in
  (* One warmup run to fault in code paths. *)
  ignore
    (Sim.run ~graph:compiled.Pipeline.graph ~mapping
       ~machine:Machine.default ());
  let result = ref None in
  let minor =
    minor_words_of (fun () ->
        result :=
          Some
            (Sim.run ~graph:compiled.Pipeline.graph ~mapping
               ~machine:Machine.default ()))
  in
  let r = match !result with Some r -> r | None -> assert false in
  let per_event = minor /. float_of_int r.Sim.events_processed in
  if per_event > 150. then
    Alcotest.failf "engine allocates %.1f minor words/event (budget 150)"
      per_event;
  (* The pool must actually be carrying the data plane. *)
  match r.Sim.pool with
  | None -> Alcotest.fail "pooled run reported no pool stats"
  | Some st ->
    let acquires = st.Pool.hits + st.Pool.misses in
    let rate = float_of_int st.Pool.hits /. float_of_int (max 1 acquires) in
    if rate < 0.95 then
      Alcotest.failf "pool hit rate %.3f below 0.95 (%d hits, %d misses)"
        rate st.Pool.hits st.Pool.misses;
    if st.Pool.releases = 0 then Alcotest.fail "no chunks were ever released"

let suite =
  [
    Alcotest.test_case "pool reuse round-trip" `Quick test_reuse_round_trip;
    Alcotest.test_case "check_no_live_leaks" `Quick test_no_live_leaks_check;
    Alcotest.test_case "pooled chunks through a ring" `Quick
      test_ring_round_trip;
    prop_convolve_into;
    prop_median_into;
    prop_subtract_into;
    prop_downsample_into;
    Alcotest.test_case "pool >=2x cheaper than fresh alloc" `Quick
      test_pool_beats_fresh_allocation;
    Alcotest.test_case "simulator allocation budget" `Quick
      test_sim_allocation_budget;
  ]
