(* The schedule pass (pass 10) and quasi-static execution.

   Pins the tentpole's exactness claims:
   - [Plan.run_plan] under quasi-static execution is bit-exact against
     the same plan forced event-driven — every result field compared,
     floats and event counts included; only the [static_*] telemetry
     fields may differ;
   - the suite never desyncs ([static_fallback_events = 0]): per-node
     firing sequences are a function of input item sequences alone, so
     the untimed recorder's tables always match the timed run;
   - schedule regions partition the mapped graph (every node in exactly
     one region) and recompiling yields an identical artifact;
   - a hand-built three-kernel chain has the firing table one can derive
     on paper. *)

open Block_parallel

let compile_suite_entry label =
  let e = Apps.Suite.by_label label in
  let inst = e.Apps.Suite.build () in
  (inst, Pipeline.compile ~machine:e.Apps.Suite.machine inst.App.graph)

(* Everything but the static telemetry, normalized so the records can be
   compared structurally — the comparison is exact (floats included). *)
let strip_static (r : Sim.result) =
  {
    r with
    Sim.static_regions = 0;
    static_fired = 0;
    static_indexed_fired = 0;
    static_fallback_events = 0;
    static_elided_events = 0;
  }

let test_static_vs_dynamic_differential () =
  let any_static = ref false in
  List.iter
    (fun label ->
      List.iter
        (fun policy ->
          let tag =
            Printf.sprintf "%s/%s" label (Plan.policy_name policy)
          in
          let _, p_dyn = compile_suite_entry label in
          let dyn = Plan.run_plan ~static:false ~policy p_dyn () in
          let _, p_st = compile_suite_entry label in
          let st = Plan.run_plan ~policy p_st () in
          Alcotest.(check bool)
            (tag ^ ": every non-telemetry result field bit-identical")
            true
            (strip_static dyn = strip_static st);
          Alcotest.(check int)
            (tag ^ ": event-driven run carries no static telemetry")
            0
            (dyn.Sim.static_regions + dyn.Sim.static_fired
            + dyn.Sim.static_indexed_fired + dyn.Sim.static_fallback_events
            + dyn.Sim.static_elided_events);
          Alcotest.(check int)
            (tag ^ ": no table desyncs across the suite")
            0 st.Sim.static_fallback_events;
          if st.Sim.static_fired > 0 then any_static := true)
        [ Plan.One_to_one; Plan.Greedy ])
    Apps.Suite.labels;
  Alcotest.(check bool) "suite exercises the firing tables" true !any_static

let test_region_partition_invariant () =
  List.iter
    (fun label ->
      let _, plan = compile_suite_entry label in
      let sched = plan.Pipeline.schedule in
      let graph = plan.Pipeline.graph in
      let ids =
        List.sort compare
          (List.map (fun n -> n.Graph.id) (Graph.nodes graph))
      in
      let region_members =
        List.concat_map
          (fun (r : Static_schedule.region) -> r.Static_schedule.r_nodes)
          sched.Static_schedule.regions
      in
      Alcotest.(check (list int))
        (label ^ ": regions partition the graph (each node exactly once)")
        ids
        (List.sort compare region_members);
      List.iter
        (fun (r : Static_schedule.region) ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s: region %d members ascending" label
               r.Static_schedule.r_id)
            r.Static_schedule.r_nodes
            (List.sort compare r.Static_schedule.r_nodes))
        sched.Static_schedule.regions;
      let static_members =
        List.concat_map
          (fun (r : Static_schedule.region) ->
            if r.Static_schedule.r_static then r.Static_schedule.r_nodes
            else [])
          sched.Static_schedule.regions
      in
      Alcotest.(check (list int))
        (label ^ ": static_node_ids lists exactly the static regions")
        (List.sort compare static_members)
        (List.sort compare (Static_schedule.static_node_ids sched));
      let cov = Static_schedule.coverage_bound sched graph in
      Alcotest.(check bool)
        (label ^ ": coverage bound within [0,1]")
        true
        (cov >= 0. && cov <= 1.))
    Apps.Suite.labels

let test_table_determinism () =
  List.iter
    (fun label ->
      let _, a = compile_suite_entry label in
      let _, b = compile_suite_entry label in
      Alcotest.(check bool)
        (label ^ ": recompiling yields an identical schedule artifact")
        true
        (a.Pipeline.schedule = b.Pipeline.schedule))
    Apps.Suite.labels

(* Byte determinism of the resolved tables: two independent compiles
   must serialize to identical bytes — a stricter check than structural
   equality (it also pins field order, sharing, and the absence of any
   nondeterministic state such as hashtable iteration order leaking into
   the artifact), and exactly what a cached-plan consumer relies on. *)
let test_resolve_byte_determinism () =
  List.iter
    (fun label ->
      let _, a = compile_suite_entry label in
      let _, b = compile_suite_entry label in
      let bytes (p : Pipeline.t) =
        Marshal.to_string p.Pipeline.schedule []
      in
      Alcotest.(check bool)
        (label ^ ": resolved schedule marshals to identical bytes")
        true
        (String.equal (bytes a) (bytes b));
      let render (p : Pipeline.t) =
        Format.asprintf "%a"
          (Static_schedule.pp p.Pipeline.graph)
          p.Pipeline.schedule
      in
      Alcotest.(check string)
        (label ^ ": --dump-after schedule rendering is byte-identical")
        (render a) (render b))
    Apps.Suite.labels

(* Known answer: src -> forward -> forward -> forward -> sink over a 2x2
   frame. The source emits pixel, pixel, EOL per row and EOF after the
   last row, so each forward kernel fires, per frame:
     run run <forward-token>  (row 0)
     run run <forward-token>  (row 1)
     <forward-token>          (EOF)
   With three recorded frames the second frame is the period and the
   third verifies it. *)
let test_known_answer_chain () =
  let frame = Size.v 2 2 in
  let frames = Image.Gen.frame_sequence ~seed:7 frame 3 in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 100. })
      (Source.spec ~frame ~frames ())
  in
  let f1 = Graph.add g (Arith.forward ()) in
  let f2 = Graph.add g (Arith.forward ()) in
  let f3 = Graph.add g (Arith.forward ()) in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  Graph.connect g ~from:(src, "out") ~into:(f1, "in");
  Graph.connect g ~from:(f1, "out") ~into:(f2, "in");
  Graph.connect g ~from:(f2, "out") ~into:(f3, "in");
  Graph.connect g ~from:(f3, "out") ~into:(sink, "in");
  let plan = Pipeline.compile ~machine:Machine.default g in
  let sched = plan.Pipeline.schedule in
  let fwd = Behaviour.forward_method_name in
  let expected = [ "run"; "run"; fwd; "run"; "run"; fwd; fwd ] in
  List.iter
    (fun node ->
      match Static_schedule.table sched node with
      | None ->
        Alcotest.failf "forward node %d has no firing table" node
      | Some t ->
        let methods entries =
          Array.to_list
            (Array.map
               (fun (e : Static_schedule.entry) -> e.Static_schedule.e_method)
               entries)
        in
        Alcotest.(check (list string))
          (Printf.sprintf "node %d prelude methods" node)
          expected
          (methods t.Static_schedule.t_prelude);
        Alcotest.(check (list string))
          (Printf.sprintf "node %d period methods" node)
          expected
          (methods t.Static_schedule.t_period);
        Alcotest.(check bool)
          (Printf.sprintf "node %d period verified by the third frame" node)
          true t.Static_schedule.t_verified;
        Alcotest.(check bool)
          (Printf.sprintf "node %d saw no user tokens" node)
          false t.Static_schedule.t_user_tokens;
        (* Every data firing moves one data item in, one out; the EOF
           firing forwards exactly the end-of-frame token. *)
        let kinds (e : Static_schedule.entry) =
          ( Array.to_list (Array.map snd e.Static_schedule.e_pops),
            Array.to_list (Array.map snd e.Static_schedule.e_pushes) )
        in
        Array.iter
          (fun (e : Static_schedule.entry) ->
            let pops, pushes = kinds e in
            if String.equal e.Static_schedule.e_method "run" then
              Alcotest.(check bool)
                (Printf.sprintf "node %d data firing moves data" node)
                true
                (pops = [ Static_schedule.K_data ]
                && pushes = [ Static_schedule.K_data ]))
          t.Static_schedule.t_period;
        let last =
          t.Static_schedule.t_period.(Array.length t.Static_schedule.t_period
                                      - 1)
        in
        let pops, pushes = kinds last in
        Alcotest.(check bool)
          (Printf.sprintf "node %d EOF firing forwards the EOF token" node)
          true
          (pops = [ Static_schedule.K_eof ]
          && pushes = [ Static_schedule.K_eof ]);
        (* The resolve step's slot indices, run lengths, and shape ids —
           known answers one can derive on paper. A forward kernel has
           one input port and one output port, so every pop resolves to
           input slot 0 and every push to output slot 0. The per-frame
           sequence run run eol / run run eol / eof compresses into runs
           [2;1;1;2;1;1;1] (the eol and eof firings share a method but
           not a kind footprint, so they never merge), and into three
           distinct shapes numbered in first-occurrence order. *)
        Array.iter
          (fun (e : Static_schedule.entry) ->
            Alcotest.(check (array int))
              (Printf.sprintf "node %d pop slots resolve to input 0" node)
              [| 0 |] e.Static_schedule.e_pop_slots;
            Alcotest.(check (array int))
              (Printf.sprintf "node %d push slots resolve to output 0" node)
              [| 0 |] e.Static_schedule.e_push_slots)
          t.Static_schedule.t_period;
        let runs entries =
          Array.to_list
            (Array.map
               (fun (e : Static_schedule.entry) -> e.Static_schedule.e_run)
               entries)
        in
        let shapes entries =
          Array.to_list
            (Array.map
               (fun (e : Static_schedule.entry) -> e.Static_schedule.e_shape)
               entries)
        in
        Alcotest.(check (list int))
          (Printf.sprintf "node %d prelude batch run lengths" node)
          [ 2; 1; 1; 2; 1; 1; 1 ]
          (runs t.Static_schedule.t_prelude);
        Alcotest.(check (list int))
          (Printf.sprintf "node %d period batch run lengths" node)
          [ 2; 1; 1; 2; 1; 1; 1 ]
          (runs t.Static_schedule.t_period);
        Alcotest.(check (list int))
          (Printf.sprintf "node %d shape ids, first-occurrence order" node)
          [ 0; 0; 1; 0; 0; 1; 2 ]
          (shapes t.Static_schedule.t_period))
    [ f1; f2; f3 ];
  (* The chain is one static region; source and sink stay dynamic. *)
  let static_ids = Static_schedule.static_node_ids sched in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "forward node %d is in a static region" f)
        true (List.mem f static_ids))
    [ f1; f2; f3 ];
  Alcotest.(check bool) "source stays dynamic" false (List.mem src static_ids);
  Alcotest.(check bool) "sink stays dynamic" false (List.mem sink static_ids);
  (* And running it quasi-statically matches the table for every firing. *)
  let st = Plan.run_plan ~policy:Plan.One_to_one plan () in
  Alcotest.(check int) "chain run never desyncs" 0
    st.Sim.static_fallback_events;
  Alcotest.(check bool) "chain run fires from the tables" true
    (st.Sim.static_fired > 0);
  (* Forward is a ported stdlib kernel, so every scripted firing takes
     the closure-free slot-indexed dispatch path. *)
  Alcotest.(check int) "every scripted firing dispatched slot-indexed"
    st.Sim.static_fired st.Sim.static_indexed_fired

(* The differential must also hold when runs execute under the sweep
   driver (the sharded path reuses one chunk pool per domain, so the
   [pool] telemetry legitimately differs between batches and is
   normalized out along with the static counters). *)
let test_sweep_static_differential () =
  let e = Apps.Suite.by_label "1" in
  let jobs =
    List.map
      (fun policy ->
        {
          Sweep.label = "1";
          machine = e.Apps.Suite.machine;
          policy;
          build = (fun () -> (e.Apps.Suite.build ()).App.graph);
        })
      [ Plan.One_to_one; Plan.Greedy ]
  in
  let sig_of (outcomes : Sweep.outcome list) =
    List.map
      (fun (o : Sweep.outcome) ->
        ( o.Sweep.o_label,
          Plan.policy_name o.Sweep.o_policy,
          { (strip_static o.Sweep.o_result) with Sim.pool = None } ))
      outcomes
  in
  Sweep.with_pool (fun pool ->
      let st = sig_of (Sweep.simulate_jobs pool jobs) in
      let dyn = sig_of (Sweep.simulate_jobs ~static:false pool jobs) in
      Alcotest.(check bool)
        "sweep outcomes bit-identical with and without quasi-static \
         execution"
        true (st = dyn))

let suite =
  [
    Alcotest.test_case "static vs dynamic, whole suite, both policies" `Slow
      test_static_vs_dynamic_differential;
    Alcotest.test_case "regions partition every suite graph" `Slow
      test_region_partition_invariant;
    Alcotest.test_case "schedule artifact deterministic across compiles"
      `Slow test_table_determinism;
    Alcotest.test_case "resolved tables byte-deterministic" `Slow
      test_resolve_byte_determinism;
    Alcotest.test_case "known-answer firing table for a 3-kernel chain"
      `Quick test_known_answer_chain;
    Alcotest.test_case "sweep path bit-identical with static on/off" `Quick
      test_sweep_static_differential;
  ]
