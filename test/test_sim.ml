(* Tests for the discrete-event simulator: timing accounting, scheduling,
   backpressure, stall detection, verdicts, and the event heap. *)

open Block_parallel
open Harness

let forward_chain ?(capacity = 16) ~frame ~rate ~frames ~stages () =
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  let rec chain prev = function
    | 0 -> prev
    | k ->
      let f = Graph.add g (Arith.forward ()) in
      Graph.connect g ~capacity ~from:prev ~into:(f, "in");
      chain (f, "out") (k - 1)
  in
  let last = chain (src, "out") stages in
  Graph.connect g ~capacity ~from:last ~into:(sink, "in");
  (g, collector)

let run ?max_time_s g machine =
  Sim.run ?max_time_s ~graph:g ~mapping:(Mapping.one_to_one g) ~machine ()

let test_empty_pipeline_content () =
  let frame = Size.v 4 3 in
  let frames = Image.Gen.frame_sequence ~seed:2 frame 2 in
  let g, collector =
    forward_chain ~frame ~rate:(Rate.hz 50.) ~frames ~stages:3 ()
  in
  let result = run g Machine.default in
  Alcotest.(check int) "no leftovers" 0 result.Sim.leftover_items;
  Alcotest.(check int) "no stalls" 0 result.Sim.input_stalls;
  Alcotest.(check bool) "not timed out" false result.Sim.timed_out;
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list frame
          (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames collector)
  in
  Alcotest.(check int) "both frames" 2 (List.length got);
  List.iter2
    (fun a b -> Alcotest.check image "frame intact" a b)
    frames got

let test_accounting_sums () =
  let frame = Size.v 6 4 in
  let frames = Image.Gen.frame_sequence ~seed:2 frame 1 in
  let g, _ = forward_chain ~frame ~rate:(Rate.hz 100.) ~frames ~stages:2 () in
  let result = run g Machine.default in
  (* Forward kernels: data fires cost 1 cycle, auto-forwarded tokens cost
     the 2-cycle forwarding charge — so per-PE run time is bounded by fires
     at those two rates. *)
  Array.iter
    (fun (p : Sim.proc_stats) ->
      let cyc = Machine.cycle_time_s Machine.default.Machine.pe in
      let lo = float_of_int p.Sim.fires *. cyc in
      let hi = 2. *. lo in
      Alcotest.(check bool) "run time within fire bounds" true
        (p.Sim.run_s >= lo -. 1e-12 && p.Sim.run_s <= hi +. 1e-12))
    result.Sim.procs;
  let run_f, read_f, write_f = Sim.utilization_breakdown result in
  Alcotest.(check bool) "read visible" true (read_f > 0.);
  Alcotest.(check bool) "write visible" true (write_f > 0.);
  Alcotest.(check bool) "utilization below 1" true
    (run_f +. read_f +. write_f <= 1.)

let test_sink_eof_times_recorded () =
  let frame = Size.v 4 3 in
  let rate = Rate.hz 40. in
  let frames = Image.Gen.frame_sequence ~seed:2 frame 3 in
  let g, _ = forward_chain ~frame ~rate ~frames ~stages:1 () in
  let result = run g Machine.default in
  match result.Sim.sink_eofs with
  | [ (_, times) ] ->
    Alcotest.(check int) "three frames" 3 (List.length times);
    let rec intervals = function
      | a :: (b :: _ as rest) -> (b -. a) :: intervals rest
      | _ -> []
    in
    List.iter
      (fun dt ->
        Alcotest.(check bool)
          (Printf.sprintf "steady interval %.6f" dt)
          true
          (Float.abs (dt -. Rate.frame_period_s rate) < 1e-4))
      (intervals times)
  | _ -> Alcotest.fail "expected one sink"

let test_backpressure_small_capacities () =
  (* Tiny channels force backpressure but must not deadlock. *)
  let frame = Size.v 5 4 in
  let frames = Image.Gen.frame_sequence ~seed:2 frame 2 in
  (* Capacity 4 is the tightest that lets the source place a frame-corner
     burst (pixel + EOL + EOF). *)
  let g, collector =
    forward_chain ~capacity:4 ~frame ~rate:(Rate.hz 20.) ~frames ~stages:4 ()
  in
  let result = run g Machine.default in
  Alcotest.(check int) "drained" 0 result.Sim.leftover_items;
  Alcotest.(check int) "all pixels arrive" (2 * 20)
    (List.length (Sink.chunks collector))

let test_overload_reports_stalls () =
  (* One slow kernel far beyond the input rate must stall the source. *)
  let g = Graph.create () in
  let frame = Size.v 8 6 in
  let rate = Rate.hz 200. in
  let frames = Image.Gen.frame_sequence ~seed:1 frame 2 in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let methods =
    [
      Method_spec.on_data ~cycles:500 ~name:"m" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let slow =
    Kernel.v ~class_name:"Slow"
      ~inputs:[ Port.input "in" Window.pixel ]
      ~outputs:[ Port.output "out" Window.pixel ]
      ~methods
      ~make_behaviour:(fun () ->
        Behaviour.iteration_kernel ~methods
          ~run:(fun _ ~alloc:_ inputs -> [ ("out", List.assoc "in" inputs) ])
          ())
      ()
  in
  let k = Graph.add g slow in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(k, "in");
  Graph.connect g ~from:(k, "out") ~into:(sink, "in");
  let result = run g Machine.default in
  Alcotest.(check bool) "stalls recorded" true (result.Sim.input_stalls > 0);
  Alcotest.(check bool) "late emissions recorded" true
    (result.Sim.late_emissions > 0);
  Alcotest.(check bool) "lateness measured" true
    (result.Sim.max_input_lateness_s > 0.);
  (* Content is still complete — real time was violated, data was not. *)
  Alcotest.(check int) "all pixels delivered" (2 * 48)
    (List.length (Sink.chunks c));
  let verdict =
    Sim.real_time_verdict result ~expected_frames:2
      ~period_s:(Rate.frame_period_s rate) ()
  in
  Alcotest.(check bool) "verdict: missed" false verdict.Sim.met

let test_verdict_met () =
  let frame = Size.v 4 3 in
  let rate = Rate.hz 30. in
  let frames = Image.Gen.frame_sequence ~seed:2 frame 3 in
  let g, _ = forward_chain ~frame ~rate ~frames ~stages:1 () in
  let result = run g Machine.default in
  let verdict =
    Sim.real_time_verdict result ~expected_frames:3
      ~period_s:(Rate.frame_period_s rate) ()
  in
  Alcotest.(check bool) "met" true verdict.Sim.met;
  Alcotest.(check int) "frames" 3 verdict.Sim.frames_delivered;
  Alcotest.(check bool) "interval near period" true
    (Float.abs (verdict.Sim.mean_frame_interval_s -. Rate.frame_period_s rate)
    < 1e-3)

let test_verdict_missing_frames () =
  let frame = Size.v 4 3 in
  let frames = Image.Gen.frame_sequence ~seed:2 frame 1 in
  let g, _ = forward_chain ~frame ~rate:(Rate.hz 30.) ~frames ~stages:1 () in
  let result = run g Machine.default in
  let verdict =
    Sim.real_time_verdict result ~expected_frames:2 ~period_s:0.1 ()
  in
  Alcotest.(check bool) "fewer frames fails" false verdict.Sim.met

let test_timeout_flagged () =
  let frame = Size.v 4 3 in
  let frames = Image.Gen.frame_sequence ~seed:2 frame 5 in
  let g, _ = forward_chain ~frame ~rate:(Rate.hz 1.) ~frames ~stages:1 () in
  let result = run ~max_time_s:0.5 g Machine.default in
  Alcotest.(check bool) "timed out" true result.Sim.timed_out

let test_multiplexed_mapping_equivalent () =
  (* The same graph on one shared PE produces identical pixels. *)
  let frame = Size.v 5 4 in
  let frames = Image.Gen.frame_sequence ~seed:4 frame 2 in
  let g, collector =
    forward_chain ~frame ~rate:(Rate.hz 10.) ~frames ~stages:3 ()
  in
  let on_chip =
    List.filter_map
      (fun (n : Graph.node) ->
        if Mapping.is_on_chip n then Some n.Graph.id else None)
      (Graph.nodes g)
  in
  let mapping = Mapping.of_groups g [ on_chip ] in
  let result = Sim.run ~graph:g ~mapping ~machine:Machine.default () in
  Alcotest.(check int) "one PE" 1 (Array.length result.Sim.procs);
  Alcotest.(check int) "all pixels" 40 (List.length (Sink.chunks collector));
  Alcotest.(check bool) "busier than 1:1 average" true
    (Sim.utilization result ~proc:0 > 0.)

let test_heap_ordering () =
  let h = Bp_sim.Heap.create ~dummy:"" () in
  Alcotest.(check bool) "empty" true (Bp_sim.Heap.is_empty h);
  List.iter
    (fun (t, v) -> Bp_sim.Heap.push h ~time:t v)
    [ (3., "c"); (1., "a"); (2., "b"); (1., "a2") ];
  Alcotest.(check int) "size" 4 (Bp_sim.Heap.size h);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Bp_sim.Heap.peek_time h);
  let order =
    List.init 4 (fun _ ->
        match Bp_sim.Heap.pop h with Some (_, v) -> v | None -> "?")
  in
  (* Ties preserve insertion order. *)
  Alcotest.(check (list string)) "sorted with stable ties"
    [ "a"; "a2"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Bp_sim.Heap.pop h = None)

let heap_sorts =
  qtest ~count:100 "heap pops in nondecreasing time order"
    QCheck2.Gen.(list_size (int_range 0 60) (float_bound_inclusive 100.))
    (fun times ->
      let h = Bp_sim.Heap.create ~dummy:() () in
      List.iter (fun t -> Bp_sim.Heap.push h ~time:t ()) times;
      let popped =
        List.init (List.length times) (fun _ ->
            match Bp_sim.Heap.pop h with
            | Some (t, ()) -> t
            | None -> nan)
      in
      List.sort compare times = popped)

let test_ring_wraparound () =
  (* Push/pop cycles that cross the capacity boundary repeatedly: the
     ring must stay FIFO while head wraps, and space accounting must stay
     exact at both the full and empty edges. *)
  let r = Ring.create ~capacity:4 ~dummy:(-1) in
  Alcotest.(check int) "initial space" 4 (Ring.space r);
  Alcotest.(check bool) "initially empty" true (Ring.is_empty r);
  (* Fill, drain half, refill past the array end, drain fully — thrice,
     so the head wraps through every slot. *)
  let counter = ref 0 in
  let popped = ref [] in
  let expected = ref [] in
  for _round = 1 to 3 do
    while not (Ring.is_full r) do
      incr counter;
      expected := !counter :: !expected;
      Ring.push r !counter
    done;
    Alcotest.(check int) "full: no space" 0 (Ring.space r);
    for _ = 1 to 2 do
      popped := Ring.pop r :: !popped
    done;
    incr counter;
    expected := !counter :: !expected;
    Ring.push r !counter;
    Alcotest.(check int) "after refill" 3 (Ring.length r);
    while not (Ring.is_empty r) do
      popped := Ring.pop r :: !popped
    done;
    Alcotest.(check int) "empty again" 4 (Ring.space r)
  done;
  Alcotest.(check (list int))
    "FIFO order preserved across wraps" (List.rev !expected)
    (List.rev !popped);
  (* Misuse raises rather than corrupting. *)
  Alcotest.check_raises "pop empty" (Invalid_argument "Ring.pop: empty")
    (fun () -> ignore (Ring.pop r));
  Ring.push r 1;
  Alcotest.(check (list int)) "to_list" [ 1 ] (Ring.to_list r);
  Alcotest.(check int) "peek" 1 (Ring.peek r);
  Ring.push r 2;
  Ring.push r 3;
  Ring.push r 4;
  Alcotest.check_raises "push full" (Invalid_argument "Ring.push: full")
    (fun () -> Ring.push r 5)

let test_blocked_source_quiesces () =
  (* A wedged graph behind a source: branch A forwards pixels while
     branch B shrinks the stream, so the joining subtract wedges on
     mixed fronts and backpressure reaches the source. The event-driven
     engine records the missed emission slots and then goes quiet —
     without the reference engine's quarter-period retry polling, a
     deadlocked run ends at quiescence (timed_out = false) after a
     handful of events instead of burning polls until the time limit. *)
  let g = Graph.create () in
  let frame = Size.v 4 3 in
  let frames = Image.Gen.frame_sequence ~seed:1 frame 3 in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 10. })
      (Source.spec ~frame ~frames ())
  in
  let fwd = Graph.add g (Arith.forward ()) in
  let med = Graph.add g (Median.spec ~w:3 ~h:3 ()) in
  let cfg = Buffer.config ~out_window:(Window.windowed 3 3) ~frame () in
  let buf = Graph.add g (Buffer.spec cfg) in
  let sub = Graph.add g (Arith.subtract ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(src, "out") ~into:(buf, "in");
  Graph.connect g ~from:(buf, "out") ~into:(med, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(sub, "in0");
  Graph.connect g ~from:(med, "out") ~into:(sub, "in1");
  Graph.connect g ~from:(sub, "out") ~into:(sink, "in");
  let result =
    Sim.run ~graph:g ~mapping:(Mapping.one_to_one g)
      ~machine:Machine.default ()
  in
  Alcotest.(check bool) "items wedged" true (result.Sim.leftover_items > 0);
  Alcotest.(check bool) "source saw the backpressure" true
    (result.Sim.input_stalls >= 1);
  Alcotest.(check bool) "quiesced, not timed out" false result.Sim.timed_out;
  Alcotest.(check bool)
    (Printf.sprintf "no retry burn (%d events)" result.Sim.events_processed)
    true
    (result.Sim.events_processed < 5_000)

let suite =
  [
    Alcotest.test_case "sim: pipeline content" `Quick
      test_empty_pipeline_content;
    Alcotest.test_case "sim: accounting sums" `Quick test_accounting_sums;
    Alcotest.test_case "sim: eof times" `Quick test_sink_eof_times_recorded;
    Alcotest.test_case "sim: backpressure" `Quick
      test_backpressure_small_capacities;
    Alcotest.test_case "sim: overload stalls" `Quick test_overload_reports_stalls;
    Alcotest.test_case "sim: verdict met" `Quick test_verdict_met;
    Alcotest.test_case "sim: verdict missing frames" `Quick
      test_verdict_missing_frames;
    Alcotest.test_case "sim: timeout flag" `Quick test_timeout_flagged;
    Alcotest.test_case "sim: shared-PE mapping" `Quick
      test_multiplexed_mapping_equivalent;
    Alcotest.test_case "heap: ordering" `Quick test_heap_ordering;
    heap_sorts;
    Alcotest.test_case "ring: wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "sim: blocked source quiesces" `Quick
      test_blocked_source_quiesces;
  ]

let test_channel_occupancy_bounded () =
  (* Occupancy never exceeds capacity, and on a rate-met run the channel
     into the first buffer stays far from full (the input is never close
     to blocking). *)
  let inst =
    Bp_apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:2 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let g = compiled.Pipeline.graph in
  let result = Pipeline.simulate compiled ~greedy:false in
  List.iter
    (fun (chan_id, depth) ->
      let c = Graph.channel g chan_id in
      Alcotest.(check bool)
        (Printf.sprintf "channel %d occupancy %d within capacity %d" chan_id
           depth c.Graph.capacity)
        true
        (depth <= c.Graph.capacity))
    result.Sim.channel_depths;
  (* Source output channels never filled to capacity (no stalls). *)
  let src = List.hd (Graph.sources g) in
  List.iter
    (fun (c : Graph.channel) ->
      let depth = List.assoc c.Graph.chan_id result.Sim.channel_depths in
      Alcotest.(check bool) "input channel headroom" true
        (depth < c.Graph.capacity))
    (Graph.out_channels g src.Graph.id ());
  Alcotest.(check int) "no stalls" 0 result.Sim.input_stalls

let test_rate_scaling_on_fast_pe () =
  (* A 4x faster PE sustains a ~4x higher rate frontier for the same
     application and budget. *)
  let build machine =
    let b ~rate_hz =
      (Bp_apps.Histogram_app.v ~frame:(Size.v 24 18) ~rate:(Rate.hz rate_hz)
         ~n_frames:1 ())
        .App.graph
    in
    (Rate_search.search ~lo_hz:5. ~hi_hz:2000. ~iterations:10 ~machine
       ~max_pes:4 b)
      .Rate_search.best_rate_hz
  in
  let slow = build Machine.default in
  let fast = build Machine.fast_pe in
  Alcotest.(check bool)
    (Printf.sprintf "fast/slow = %.2f in [3,5]" (fast /. slow))
    true
    (fast /. slow > 3. && fast /. slow < 5.)

let suite =
  suite
  @ [
      Alcotest.test_case "sim: channel occupancy" `Quick
        test_channel_occupancy_bounded;
      Alcotest.test_case "machine: fast PE scales the frontier" `Slow
        test_rate_scaling_on_fast_pe;
    ]

let test_stuck_diagnostics () =
  (* A deliberately mis-built graph: subtract fed by streams of different
     lengths deadlocks on mixed fronts; the diagnostic names the wedge. *)
  let g = Graph.create () in
  let frame = Size.v 4 3 in
  let frames = Image.Gen.frame_sequence ~seed:1 frame 1 in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 10. })
      (Source.spec ~frame ~frames ())
  in
  (* Branch A: identity; branch B: a 3x3 median that shrinks the stream.
     Without the alignment pass, subtract wedges mid-frame. *)
  let fwd = Graph.add g (Arith.forward ()) in
  let med = Graph.add g (Median.spec ~w:3 ~h:3 ()) in
  let cfg = Buffer.config ~out_window:(Window.windowed 3 3) ~frame () in
  let buf = Graph.add g (Buffer.spec cfg) in
  let sub = Graph.add g (Arith.subtract ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(src, "out") ~into:(buf, "in");
  Graph.connect g ~from:(buf, "out") ~into:(med, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(sub, "in0");
  Graph.connect g ~from:(med, "out") ~into:(sub, "in1");
  Graph.connect g ~from:(sub, "out") ~into:(sink, "in");
  let result =
    Sim.run ~max_time_s:1. ~graph:g ~mapping:(Mapping.one_to_one g)
      ~machine:Machine.default ()
  in
  Alcotest.(check bool) "items wedged" true (result.Sim.leftover_items > 0);
  Alcotest.(check bool) "channels identified" true
    (result.Sim.leftover_channels <> []);
  let report = Format.asprintf "@[<v>%a@]" (Sim.pp_stuck g) result in
  Alcotest.(check bool) "names the subtract" true
    (Harness.contains report "Subtract")

let suite =
  suite
  @ [ Alcotest.test_case "sim: stuck diagnostics" `Quick test_stuck_diagnostics ]

let test_max_events_cap () =
  let frame = Size.v 4 3 in
  let frames = Image.Gen.frame_sequence ~seed:2 frame 3 in
  let g, _ = forward_chain ~frame ~rate:(Rate.hz 30.) ~frames ~stages:2 () in
  let result =
    Sim.run ~max_events:10 ~graph:g ~mapping:(Mapping.one_to_one g)
      ~machine:Machine.default ()
  in
  Alcotest.(check bool) "flagged as cut short" true result.Sim.timed_out

let test_pe_budget_exceeded () =
  let inst =
    Bp_apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:1 ()
  in
  let machine =
    Machine.v ~max_pes:2 Machine.default.Machine.pe
  in
  let compiled = Pipeline.compile ~machine inst.Bp_apps.App.graph in
  Harness.expect_error (Err.Resource_exhausted "") (fun () ->
      ignore (Pipeline.mapping_greedy compiled))

let suite =
  suite
  @ [
      Alcotest.test_case "sim: max events cap" `Quick test_max_events_cap;
      Alcotest.test_case "pipeline: PE budget exceeded" `Quick
        test_pe_budget_exceeded;
    ]
