(* Tests for the compiler transforms: buffering, alignment (both policies),
   parallelization (degrees, dependency caps, buffer striping, errors), and
   greedy multiplexing. *)

open Block_parallel
open Harness

let pipeline_inst ?(frame = Size.v 24 18) ?(rate = Rate.hz 30.) () =
  Apps.Image_pipeline.v ~frame ~rate ~n_frames:1 ()

(* ---- buffering ---------------------------------------------------------- *)

let test_buffering_inserts_two () =
  let inst = pipeline_inst () in
  let g = inst.App.graph in
  ignore (Align.run g);
  let inserted = Buffering.run g in
  Alcotest.(check int) "median + conv buffers" 2 (List.length inserted);
  (* Storage follows the double-buffer rule on the 24-wide frame. *)
  let storages =
    List.sort compare
      (List.map (fun (b : Buffering.inserted) -> b.Buffering.storage) inserted)
  in
  Alcotest.(check (list size)) "sized per rule"
    [ Size.v 24 6; Size.v 24 10 ]
    storages;
  (* Idempotent: nothing left to buffer. *)
  Alcotest.(check int) "second pass empty" 0 (List.length (Buffering.run g))

let test_buffering_rejects_overlapped_producer () =
  (* A producer that emits 3x3 sliding windows feeding a consumer that
     needs a different shape cannot be re-buffered. *)
  let g = Graph.create () in
  let frame = Size.v 8 8 in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 5. })
      (Source.spec ~frame ~frames:[] ())
  in
  let cfg = Buffer.config ~out_window:(Window.windowed 3 3) ~frame () in
  let buf = Graph.add g (Buffer.spec cfg) in
  let med5 = Graph.add g (Median.spec ~w:5 ~h:5 ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(buf, "in");
  Graph.connect g ~from:(buf, "out") ~into:(med5, "in");
  Graph.connect g ~from:(med5, "out") ~into:(sink, "in");
  expect_error (Err.Unsupported "") (fun () -> ignore (Buffering.run g))

(* ---- alignment ---------------------------------------------------------- *)

let test_align_trim () =
  let inst = pipeline_inst () in
  let g = inst.App.graph in
  let repairs = Align.run ~policy:Align.Trim g in
  (match repairs with
  | [ r ] ->
    Alcotest.(check string) "on the median input" "in0" r.Align.on_port;
    Alcotest.(check (list int)) "margins 1,1,1,1" [ 1; 1; 1; 1 ]
      (let l, rr, t, b = r.Align.margins in
       [ l; rr; t; b ]);
    let n = Graph.node g r.Align.inserted in
    Alcotest.(check bool) "inset role" true
      (n.Graph.spec.Kernel.role = Kernel.Inset)
  | l -> Alcotest.failf "expected one repair, got %d" (List.length l));
  (* Converged: a fresh analysis sees no misalignment. *)
  Alcotest.(check int) "aligned" 0
    (List.length (Dataflow.misalignments (Dataflow.analyze g)))

let test_align_pad () =
  let inst = Apps.Image_pipeline.v ~policy:Align.Pad_zero ~frame:(Size.v 24 18)
      ~rate:(Rate.hz 30.) ~n_frames:1 ()
  in
  let g = inst.App.graph in
  let repairs = Align.run ~policy:Align.Pad_zero g in
  (match repairs with
  | [ r ] ->
    Alcotest.(check string) "on the conv input" "in1" r.Align.on_port;
    let n = Graph.node g r.Align.inserted in
    Alcotest.(check bool) "pad role" true
      (n.Graph.spec.Kernel.role = Kernel.Pad)
  | l -> Alcotest.failf "expected one repair, got %d" (List.length l));
  Alcotest.(check int) "aligned" 0
    (List.length (Dataflow.misalignments (Dataflow.analyze g)))

let test_align_noop_when_aligned () =
  let inst =
    Apps.Multi_conv.v ~frame:(Size.v 16 12) ~rate:(Rate.hz 10.) ~n_frames:1 ()
  in
  (* Both branches of multi-conv inset by 2: already aligned. *)
  Alcotest.(check int) "no repairs" 0
    (List.length (Align.run inst.App.graph))

(* ---- parallelization ---------------------------------------------------- *)

let compiled_example ?(frame = Size.v 24 18) ?(rate = Rate.hz 30.)
    ?(machine = Machine.default) () =
  let inst = Apps.Image_pipeline.v ~frame ~rate ~n_frames:1 () in
  (inst, Pipeline.compile ~machine inst.App.graph)

let test_parallelize_rates_drive_degree () =
  let _, slow = compiled_example ~rate:(Rate.hz 10.) () in
  let _, fast = compiled_example ~rate:(Rate.hz 40.) () in
  let degree_of compiled name =
    match
      List.find_opt
        (fun (d : Parallelize.decision) -> d.Parallelize.original = name)
        compiled.Pipeline.decisions
    with
    | Some d -> d.Parallelize.degree
    | None -> 1
  in
  Alcotest.(check int) "slow median serial" 1 (degree_of slow "3x3 Median");
  Alcotest.(check bool) "fast median replicated" true
    (degree_of fast "3x3 Median" > 1);
  Alcotest.(check bool) "faster rate, more replicas" true
    (degree_of fast "3x3 Median" >= degree_of slow "3x3 Median")

let test_parallelize_dependency_cap () =
  (* The merge kernel is dependency-capped to the input's single instance
     even at rates that would otherwise replicate it: it never appears in
     the decisions. *)
  let _, compiled = compiled_example ~rate:(Rate.hz 40.) () in
  Alcotest.(check bool) "merge never replicated" true
    (List.for_all
       (fun (d : Parallelize.decision) -> d.Parallelize.original <> "Merge")
       compiled.Pipeline.decisions)

let test_parallelize_inserts_plumbing () =
  let _, compiled = compiled_example ~rate:(Rate.hz 40.) () in
  let g = compiled.Pipeline.graph in
  let count role =
    List.length
      (List.filter
         (fun (n : Graph.node) -> n.Graph.spec.Kernel.role = role)
         (Graph.nodes g))
  in
  Alcotest.(check bool) "splits present" true (count Kernel.Split > 0);
  Alcotest.(check bool) "joins present" true (count Kernel.Join > 0);
  Alcotest.(check bool) "replicate for coeff" true (count Kernel.Replicate > 0);
  Graph.validate g

let test_parallelize_buffer_striping () =
  let inst =
    Apps.Parallel_buffer.v ~frame:(Size.v 96 16) ~rate:(Rate.hz 20.)
      ~n_frames:1 ()
  in
  let compiled =
    Pipeline.compile ~machine:Machine.small_memory inst.App.graph
  in
  let d =
    List.find
      (fun (d : Parallelize.decision) ->
        d.Parallelize.reason = Parallelize.Memory_bound)
      compiled.Pipeline.decisions
  in
  Alcotest.(check bool) "several stripes" true (d.Parallelize.degree >= 2);
  (* Every stripe buffer must fit the PE memory. *)
  let pe = Machine.small_memory.Machine.pe in
  List.iter
    (fun id ->
      let n = Graph.node compiled.Pipeline.graph id in
      Alcotest.(check bool) "stripe fits" true
        (Kernel.memory_words n.Graph.spec <= pe.Machine.mem_words))
    d.Parallelize.replicas

let test_parallelize_serial_overload_rejected () =
  (* A serial kernel that cannot keep up is a compile-time error. *)
  let g = Graph.create () in
  let frame = Size.v 24 18 in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 100. })
      (Source.spec ~frame ~frames:[] ())
  in
  let methods =
    [
      Method_spec.on_data ~cycles:5000 ~name:"m" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let slow_serial =
    Kernel.v ~class_name:"Slow Serial" ~parallelization:Kernel.Serial
      ~inputs:[ Port.input "in" Window.pixel ]
      ~outputs:[ Port.output "out" Window.pixel ]
      ~methods
      ~make_behaviour:(fun () ->
        Behaviour.iteration_kernel ~methods
          ~run:(fun _ ~alloc:_ inputs -> [ ("out", List.assoc "in" inputs) ])
          ())
      ()
  in
  let k = Graph.add g slow_serial in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(k, "in");
  Graph.connect g ~from:(k, "out") ~into:(sink, "in");
  expect_error (Err.Not_schedulable "") (fun () ->
      ignore (Parallelize.run Machine.default g))

let test_parallelize_memory_overflow_rejected () =
  let g = Graph.create () in
  let frame = Size.v 8 8 in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 1. })
      (Source.spec ~frame ~frames:[] ())
  in
  let methods =
    [ Method_spec.on_data ~name:"m" ~inputs:[ "in" ] ~outputs:[ "out" ] () ]
  in
  let hog =
    Kernel.v ~class_name:"Memory Hog" ~state_words:100_000
      ~inputs:[ Port.input "in" Window.pixel ]
      ~outputs:[ Port.output "out" Window.pixel ]
      ~methods
      ~make_behaviour:(fun () ->
        Behaviour.iteration_kernel ~methods
          ~run:(fun _ ~alloc:_ inputs -> [ ("out", List.assoc "in" inputs) ])
          ())
      ()
  in
  let k = Graph.add g hog in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(k, "in");
  Graph.connect g ~from:(k, "out") ~into:(sink, "in");
  expect_error (Err.Resource_exhausted "") (fun () ->
      ignore (Parallelize.run Machine.default g))

let test_required_cycles_positive () =
  let inst = pipeline_inst () in
  let g = inst.App.graph in
  let an = Dataflow.analyze g in
  let med = Graph.node_by_name g "3x3 Median" in
  let r = Parallelize.required_cycles_per_s an Machine.default med.Graph.id in
  Alcotest.(check bool) "positive demand" true (r > 0.);
  Alcotest.(check bool) "degree at least 1" true
    (Parallelize.degree_of an Machine.default med.Graph.id >= 1)

(* ---- multiplexing ------------------------------------------------------- *)

let test_multiplex_covers_all_nodes () =
  let _, compiled = compiled_example () in
  let g = compiled.Pipeline.graph in
  let groups = Multiplex.greedy compiled.Pipeline.machine g in
  (* Mapping.of_groups validates coverage and uniqueness. *)
  ignore (Mapping.of_groups g groups);
  Alcotest.(check bool) "uses fewer PEs" true
    (List.length groups < List.length (Multiplex.one_to_one g))

let test_multiplex_respects_budgets () =
  let _, compiled = compiled_example ~rate:(Rate.hz 40.) () in
  let machine = compiled.Pipeline.machine in
  let g = compiled.Pipeline.graph in
  let groups = Multiplex.greedy machine g in
  let cap =
    machine.Machine.target_utilization *. machine.Machine.multiplex_headroom
  in
  List.iter
    (fun (s : Multiplex.group_stats) ->
      if List.length s.Multiplex.members > 1 then begin
        Alcotest.(check bool)
          (Printf.sprintf "utilization %.2f under cap"
             s.Multiplex.predicted_utilization)
          true
          (s.Multiplex.predicted_utilization <= cap +. 1e-9);
        Alcotest.(check bool) "memory under PE" true
          (s.Multiplex.memory_words <= machine.Machine.pe.Machine.mem_words)
      end)
    (Multiplex.stats machine g groups)

let test_multiplex_protects_input_buffers () =
  let _, compiled = compiled_example () in
  let g = compiled.Pipeline.graph in
  let protected_ids =
    List.filter_map
      (fun (n : Graph.node) ->
        if Multiplex.protected_input_buffer g n.Graph.id then Some n.Graph.id
        else None)
      (Graph.nodes g)
  in
  Alcotest.(check bool) "example has input buffers" true
    (List.length protected_ids >= 2);
  let groups = Multiplex.greedy compiled.Pipeline.machine g in
  List.iter
    (fun id ->
      let group = List.find (fun ids -> List.mem id ids) groups in
      Alcotest.(check int) "input buffer alone" 1 (List.length group))
    protected_ids

let test_mapping_module () =
  let _, compiled = compiled_example () in
  let g = compiled.Pipeline.graph in
  let m = Mapping.one_to_one g in
  Alcotest.(check bool) "off-chip not mapped" true
    (List.for_all
       (fun (n : Graph.node) ->
         Mapping.is_on_chip n || Mapping.processor_of m n.Graph.id = None)
       (Graph.nodes g));
  expect_error (Err.Graph_malformed "") (fun () ->
      ignore (Mapping.of_groups g []));
  let src = List.hd (Graph.sources g) in
  expect_error (Err.Graph_malformed "") (fun () ->
      ignore (Mapping.of_groups g [ [ src.Graph.id ] ]))

let suite =
  [
    Alcotest.test_case "buffering: inserts and sizes" `Quick
      test_buffering_inserts_two;
    Alcotest.test_case "buffering: overlapped producer" `Quick
      test_buffering_rejects_overlapped_producer;
    Alcotest.test_case "align: trim policy" `Quick test_align_trim;
    Alcotest.test_case "align: pad policy" `Quick test_align_pad;
    Alcotest.test_case "align: no-op when aligned" `Quick
      test_align_noop_when_aligned;
    Alcotest.test_case "parallelize: rate drives degree" `Quick
      test_parallelize_rates_drive_degree;
    Alcotest.test_case "parallelize: dependency cap" `Quick
      test_parallelize_dependency_cap;
    Alcotest.test_case "parallelize: split/join plumbing" `Quick
      test_parallelize_inserts_plumbing;
    Alcotest.test_case "parallelize: buffer striping" `Quick
      test_parallelize_buffer_striping;
    Alcotest.test_case "parallelize: serial overload" `Quick
      test_parallelize_serial_overload_rejected;
    Alcotest.test_case "parallelize: memory overflow" `Quick
      test_parallelize_memory_overflow_rejected;
    Alcotest.test_case "parallelize: demand positive" `Quick
      test_required_cycles_positive;
    Alcotest.test_case "multiplex: coverage" `Quick
      test_multiplex_covers_all_nodes;
    Alcotest.test_case "multiplex: budgets" `Quick test_multiplex_respects_budgets;
    Alcotest.test_case "multiplex: input buffers protected" `Quick
      test_multiplex_protects_input_buffers;
    Alcotest.test_case "mapping: module" `Quick test_mapping_module;
  ]

(* ---- pipeline chains (Section IV-B, second use) ------------------------- *)

let heavy_unary ~name ~cycles f =
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"run" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  Kernel.v ~class_name:name
    ~inputs:[ Port.input "in" Window.pixel ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods
    ~make_behaviour:(fun () ->
      Behaviour.iteration_kernel ~methods
        ~run:(fun _ ~alloc:_ inputs -> [ ("out", Image.map f (List.assoc "in" inputs)) ])
        ())
    ()

let pipeline_chain_app () =
  let frame = Size.v 24 18 in
  let rate = Rate.hz 30. in
  let frames = Image.Gen.frame_sequence ~seed:13 frame 2 in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let a = Graph.add g ~name:"A" (heavy_unary ~name:"A" ~cycles:120 (fun v -> v *. 2.)) in
  let b = Graph.add g ~name:"B" (heavy_unary ~name:"B" ~cycles:100 (fun v -> v +. 1.)) in
  let c = Graph.add g ~name:"C" (heavy_unary ~name:"C" ~cycles:80 (fun v -> v *. 0.5)) in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  Graph.connect g ~from:(src, "out") ~into:(a, "in");
  Graph.connect g ~from:(a, "out") ~into:(b, "in");
  Graph.connect g ~from:(b, "out") ~into:(c, "in");
  Graph.connect g ~from:(c, "out") ~into:(sink, "in");
  (* The dependency edges declare A -> B -> C a pipeline. *)
  Graph.add_dep g ~src:a ~dst:b;
  Graph.add_dep g ~src:b ~dst:c;
  (g, frames, frame, collector)

let test_pipeline_chain_structure () =
  let g, _, _, _ = pipeline_chain_app () in
  let decisions = Parallelize.run Machine.default g in
  let chain =
    List.find
      (fun (d : Parallelize.decision) ->
        contains d.Parallelize.original "pipeline")
      decisions
  in
  Alcotest.(check bool) "replicated" true (chain.Parallelize.degree >= 2);
  Alcotest.(check int) "stages x degree"
    (3 * chain.Parallelize.degree)
    (List.length chain.Parallelize.replicas);
  (* Point-to-point: each B instance is fed directly by an A instance, with
     no split/join in between. *)
  let b0 = Graph.node_by_name g "B_0" in
  (match Graph.in_channel g b0.Graph.id "in" with
  | Some ch ->
    Alcotest.(check string) "B_0 fed by A_0" "A_0"
      (Graph.node g ch.Graph.src.Graph.node).Graph.name
  | None -> Alcotest.fail "B_0 unconnected");
  (* Exactly one split and one join for the whole chain. *)
  let count role =
    List.length
      (List.filter
         (fun (n : Graph.node) -> n.Graph.spec.Kernel.role = role)
         (Graph.nodes g))
  in
  Alcotest.(check int) "one split" 1 (count Kernel.Split);
  Alcotest.(check int) "one join" 1 (count Kernel.Join);
  Graph.validate g

let test_pipeline_chain_end_to_end () =
  let g, frames, frame, collector = pipeline_chain_app () in
  let compiled = Pipeline.compile ~machine:Machine.default g in
  let result = Pipeline.simulate compiled ~greedy:false in
  Alcotest.(check int) "clean" 0 result.Sim.leftover_items;
  let golden =
    List.map (Image.map (fun v -> ((v *. 2.) +. 1.) *. 0.5)) frames
  in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list frame
          (List.map (fun ch -> Image.get ch ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames collector)
  in
  List.iter2 (fun a b -> Alcotest.check image "pipeline golden" a b) golden got;
  let verdict =
    Sim.real_time_verdict result ~expected_frames:2
      ~period_s:(1. /. 30.) ()
  in
  Alcotest.(check bool) "meets rate" true verdict.Sim.met

let suite =
  suite
  @ [
      Alcotest.test_case "pipeline chain: structure" `Quick
        test_pipeline_chain_structure;
      Alcotest.test_case "pipeline chain: end-to-end" `Quick
        test_pipeline_chain_end_to_end;
    ]

let test_compile_idempotent () =
  (* Re-compiling an elaborated graph is a no-op: nothing left to repair,
     buffer, or replicate. *)
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:1 ()
  in
  let first = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let nodes_before = Graph.size first.Pipeline.graph in
  let second = Pipeline.compile ~machine:Machine.default first.Pipeline.graph in
  Alcotest.(check int) "no new repairs" 0 (List.length second.Pipeline.repairs);
  Alcotest.(check int) "no new buffers" 0 (List.length second.Pipeline.buffers);
  Alcotest.(check int) "no new replicas" 0
    (List.length second.Pipeline.decisions);
  Alcotest.(check int) "graph unchanged" nodes_before
    (Graph.size second.Pipeline.graph)

let suite =
  suite
  @ [
      Alcotest.test_case "compile: idempotent" `Quick test_compile_idempotent;
    ]
